// Native integer GEMM (DESIGN.md §15).
//
// Entry points for the quantized inference path: C[M,N] = A[M,K] *
// B[N,K]^T in the *dot-product layout* — both operands row-contiguous
// over K, C an int64 accumulator image. This is the natural layout for
// fixed-point inference: InnerProduct weights are already stored
// [Out, In], and conv lowers to an int16/int8 "im2row" patch matrix
// [OHW, Cin*K*K] against weights [Cout, Cin*K*K], so neither side needs
// a transpose.
//
// Unlike the float kernels, NO accumulation-order contract is needed:
// every product and sum is exact in int64 (the widest operands are 16
// bits, biases are aligned separately), and integer addition is
// associative, so any sharding, lane order, or SIMD level yields the
// same words. The drivers shard rows across the global thread pool and
// dispatch to the AVX2 or scalar block kernels (tensor/microkernel)
// per the active QNN_SIMD level.
#pragma once

#include <cstdint>

namespace qnn {

// C[M,N] (int64, overwritten) = A[M,K] * B[N,K]^T.
void int_gemm_bt(std::int64_t m, std::int64_t n, std::int64_t k,
                 const std::int8_t* a, const std::int8_t* b, std::int64_t* c);
void int_gemm_bt(std::int64_t m, std::int64_t n, std::int64_t k,
                 const std::int16_t* a, const std::int16_t* b,
                 std::int64_t* c);

}  // namespace qnn
