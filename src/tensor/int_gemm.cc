#include "tensor/int_gemm.h"

#include "obs/metrics.h"
#include "obs/trace.h"
#include "tensor/microkernel.h"
#include "util/thread_pool.h"

namespace qnn {
namespace {

struct IntGemmMetrics {
  obs::Counter calls;
  obs::Counter macs;
};

IntGemmMetrics& int_gemm_metrics() {
  obs::Registry& r = obs::Registry::global();
  static IntGemmMetrics m{r.counter("int_gemm.calls"),
                          r.counter("int_gemm.macs")};
  return m;
}

// Row-sharded driver: integer accumulation is exact, so the shard plan
// is free to follow the pool — sharding only needs the grain heuristic
// so small problems run inline.
template <typename WordT>
void int_gemm_bt_impl(std::int64_t m, std::int64_t n, std::int64_t k,
                      const WordT* a, const WordT* b, std::int64_t* c) {
  QNN_SPAN_N("int_gemm", "tensor", m * n * k);
  IntGemmMetrics& gm = int_gemm_metrics();
  gm.calls.inc();
  gm.macs.add(m * n * k);
  parallel_for_shards(m, kReductionShards, shard_grain(2 * n * k),
                      [&](std::size_t, std::int64_t begin, std::int64_t end) {
                        if (begin >= end) return;
                        if constexpr (sizeof(WordT) == 1) {
                          gemm_block_s8(active_simd_level(), end - begin, n, k,
                                        a + begin * k, b, c + begin * n);
                        } else {
                          gemm_block_s16(active_simd_level(), end - begin, n,
                                         k, a + begin * k, b, c + begin * n);
                        }
                      });
}

}  // namespace

void int_gemm_bt(std::int64_t m, std::int64_t n, std::int64_t k,
                 const std::int8_t* a, const std::int8_t* b,
                 std::int64_t* c) {
  int_gemm_bt_impl(m, n, k, a, b, c);
}

void int_gemm_bt(std::int64_t m, std::int64_t n, std::int64_t k,
                 const std::int16_t* a, const std::int16_t* b,
                 std::int64_t* c) {
  int_gemm_bt_impl(m, n, k, a, b, c);
}

}  // namespace qnn
