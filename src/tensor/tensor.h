// Dense float tensor with value semantics.
//
// The whole framework — including quantized inference — computes on float
// storage; quantization constrains values to a bit-accurate representable
// grid ("fake quantization", the Ristretto methodology the paper adopts).
// Bit-true integer arithmetic lives in src/fixed and is used by tests to
// validate that the float grid matches the integer semantics exactly.
#pragma once

#include <span>
#include <vector>

#include "tensor/shape.h"
#include "util/rng.h"

namespace qnn {

class Tensor {
 public:
  Tensor() = default;
  explicit Tensor(Shape shape)
      : shape_(std::move(shape)),
        data_(static_cast<std::size_t>(shape_.count()), 0.0f) {}
  Tensor(Shape shape, std::vector<float> data);

  const Shape& shape() const { return shape_; }
  std::int64_t count() const { return shape_.count(); }
  bool empty() const { return data_.empty(); }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }

  std::span<float> values() { return data_; }
  std::span<const float> values() const { return data_; }

  float& operator[](std::int64_t i) {
    QNN_DCHECK(i >= 0 && i < count());
    return data_[static_cast<std::size_t>(i)];
  }
  float operator[](std::int64_t i) const {
    QNN_DCHECK(i >= 0 && i < count());
    return data_[static_cast<std::size_t>(i)];
  }

  // NCHW element access (rank-4 only).
  float& at(std::int64_t n, std::int64_t c, std::int64_t h, std::int64_t w) {
    return data_[static_cast<std::size_t>(offset(n, c, h, w))];
  }
  float at(std::int64_t n, std::int64_t c, std::int64_t h,
           std::int64_t w) const {
    return data_[static_cast<std::size_t>(offset(n, c, h, w))];
  }

  // Rank-2 (N, F) element access.
  float& at2(std::int64_t n, std::int64_t f) {
    QNN_DCHECK(shape_.rank() == 2);
    return data_[static_cast<std::size_t>(n * shape_[1] + f)];
  }
  float at2(std::int64_t n, std::int64_t f) const {
    QNN_DCHECK(shape_.rank() == 2);
    return data_[static_cast<std::size_t>(n * shape_[1] + f)];
  }

  void fill(float v);
  void zero() { fill(0.0f); }

  // Reinterprets the same data with a new shape of equal element count.
  Tensor reshaped(Shape new_shape) const;

  // Element-wise in-place helpers.
  void add(const Tensor& other);          // this += other
  void axpy(float alpha, const Tensor& x);  // this += alpha * x
  void scale(float alpha);                 // this *= alpha

  float max_abs() const;
  double sum() const;
  double mean() const;

  // Fills with draws from the given distributions.
  void fill_uniform(Rng& rng, float lo, float hi);
  void fill_normal(Rng& rng, float mean, float stddev);

 private:
  std::int64_t offset(std::int64_t n, std::int64_t c, std::int64_t h,
                      std::int64_t w) const {
    QNN_DCHECK(shape_.rank() == 4);
    QNN_DCHECK(n >= 0 && n < shape_.n());
    QNN_DCHECK(c >= 0 && c < shape_.c());
    QNN_DCHECK(h >= 0 && h < shape_.h());
    QNN_DCHECK(w >= 0 && w < shape_.w());
    return ((n * shape_.c() + c) * shape_.h() + h) * shape_.w() + w;
  }

  Shape shape_;
  std::vector<float> data_;
};

}  // namespace qnn
