#include "tensor/im2col.h"

#include "obs/trace.h"

namespace qnn {

void im2col(const ConvGeometry& g, const float* image, float* cols) {
  QNN_SPAN("im2col", "tensor");
  const std::int64_t oh = g.out_h(), ow = g.out_w();
  std::int64_t row = 0;
  for (std::int64_t c = 0; c < g.in_c; ++c) {
    const float* channel = image + c * g.in_h * g.in_w;
    for (std::int64_t kh = 0; kh < g.kernel_h; ++kh) {
      for (std::int64_t kw = 0; kw < g.kernel_w; ++kw, ++row) {
        float* out = cols + row * (oh * ow);
        for (std::int64_t y = 0; y < oh; ++y) {
          const std::int64_t iy = y * g.stride_h - g.pad_h + kh;
          if (iy < 0 || iy >= g.in_h) {
            for (std::int64_t x = 0; x < ow; ++x) out[y * ow + x] = 0.0f;
            continue;
          }
          const float* src = channel + iy * g.in_w;
          for (std::int64_t x = 0; x < ow; ++x) {
            const std::int64_t ix = x * g.stride_w - g.pad_w + kw;
            out[y * ow + x] =
                (ix >= 0 && ix < g.in_w) ? src[ix] : 0.0f;
          }
        }
      }
    }
  }
}

void col2im(const ConvGeometry& g, const float* cols, float* image) {
  QNN_SPAN("col2im", "tensor");
  const std::int64_t oh = g.out_h(), ow = g.out_w();
  std::int64_t row = 0;
  for (std::int64_t c = 0; c < g.in_c; ++c) {
    float* channel = image + c * g.in_h * g.in_w;
    for (std::int64_t kh = 0; kh < g.kernel_h; ++kh) {
      for (std::int64_t kw = 0; kw < g.kernel_w; ++kw, ++row) {
        const float* in = cols + row * (oh * ow);
        for (std::int64_t y = 0; y < oh; ++y) {
          const std::int64_t iy = y * g.stride_h - g.pad_h + kh;
          if (iy < 0 || iy >= g.in_h) continue;
          float* dst = channel + iy * g.in_w;
          for (std::int64_t x = 0; x < ow; ++x) {
            const std::int64_t ix = x * g.stride_w - g.pad_w + kw;
            if (ix >= 0 && ix < g.in_w) dst[ix] += in[y * ow + x];
          }
        }
      }
    }
  }
}

}  // namespace qnn
