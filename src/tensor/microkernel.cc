#include "tensor/microkernel.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdlib>

#include "util/logging.h"

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define QNN_MICROKERNEL_X86 1
#include <immintrin.h>
#else
#define QNN_MICROKERNEL_X86 0
#endif

namespace qnn {
namespace {

// ---------------------------------------------------------------------
// Scalar float kernel — the canonical order, spelled portably. One
// std::fmaf per (element, p): correctly rounded by IEEE 754, so this IS
// the AVX2 kernel's arithmetic, minus the registers. Unrolled 4 rows so
// the compiler keeps accumulator rows hot and vectorizes the N loop
// (auto-vectorized fmaf lanes compute the same bytes — lanes never mix).
void block_f32_scalar(std::int64_t mb, std::int64_t nb, std::int64_t kb,
                      const float* a, std::int64_t lda, const float* b,
                      std::int64_t ldb, float* c, std::int64_t ldc) {
  std::int64_t i = 0;
  for (; i + 4 <= mb; i += 4) {
    const float* a0 = a + (i + 0) * lda;
    const float* a1 = a + (i + 1) * lda;
    const float* a2 = a + (i + 2) * lda;
    const float* a3 = a + (i + 3) * lda;
    float* c0 = c + (i + 0) * ldc;
    float* c1 = c + (i + 1) * ldc;
    float* c2 = c + (i + 2) * ldc;
    float* c3 = c + (i + 3) * ldc;
    for (std::int64_t p = 0; p < kb; ++p) {
      const float v0 = a0[p], v1 = a1[p], v2 = a2[p], v3 = a3[p];
      const float* bp = b + p * ldb;
      for (std::int64_t j = 0; j < nb; ++j) {
        const float bj = bp[j];
        c0[j] = std::fmaf(v0, bj, c0[j]);
        c1[j] = std::fmaf(v1, bj, c1[j]);
        c2[j] = std::fmaf(v2, bj, c2[j]);
        c3[j] = std::fmaf(v3, bj, c3[j]);
      }
    }
  }
  for (; i < mb; ++i) {
    const float* ai = a + i * lda;
    float* ci = c + i * ldc;
    for (std::int64_t p = 0; p < kb; ++p) {
      const float v = ai[p];
      const float* bp = b + p * ldb;
      for (std::int64_t j = 0; j < nb; ++j) ci[j] = std::fmaf(v, bp[j], ci[j]);
    }
  }
}

// Scalar integer kernels: dot-product layout, int64 accumulation.
// Products promote to int (int8: |p| <= 2^14, int16: |p| <= 2^30 — both
// fit int32) before widening into the int64 sum.
void block_s8_scalar(std::int64_t m, std::int64_t n, std::int64_t k,
                     const std::int8_t* a, const std::int8_t* b,
                     std::int64_t* c) {
  for (std::int64_t i = 0; i < m; ++i) {
    const std::int8_t* ai = a + i * k;
    std::int64_t* ci = c + i * n;
    for (std::int64_t j = 0; j < n; ++j) {
      const std::int8_t* bj = b + j * k;
      std::int64_t acc = 0;
      for (std::int64_t p = 0; p < k; ++p)
        acc += static_cast<std::int32_t>(ai[p]) *
               static_cast<std::int32_t>(bj[p]);
      ci[j] = acc;
    }
  }
}

void block_s16_scalar(std::int64_t m, std::int64_t n, std::int64_t k,
                      const std::int16_t* a, const std::int16_t* b,
                      std::int64_t* c) {
  for (std::int64_t i = 0; i < m; ++i) {
    const std::int16_t* ai = a + i * k;
    std::int64_t* ci = c + i * n;
    for (std::int64_t j = 0; j < n; ++j) {
      const std::int16_t* bj = b + j * k;
      std::int64_t acc = 0;
      for (std::int64_t p = 0; p < k; ++p)
        acc += static_cast<std::int32_t>(ai[p]) *
               static_cast<std::int32_t>(bj[p]);
      ci[j] = acc;
    }
  }
}

#if QNN_MICROKERNEL_X86

// ---------------------------------------------------------------------
// AVX2 + FMA float kernel. Register blocking: 4 rows x 16 columns of C
// live in 8 ymm accumulators across the whole K loop (plus 2 B vectors
// and 1 broadcast), so C traffic drops from once per p to once per
// block. Column groups of kGemmLanes are the lane stripe; each lane
// folds its own element with vfmadd231ps — the same serial fmaf fold as
// the scalar kernel, element for element.

__attribute__((target("avx2,fma"))) inline void panel_f32_4x16(
    std::int64_t kb, const float* a0, const float* a1, const float* a2,
    const float* a3, const float* b, std::int64_t ldb, float* c0, float* c1,
    float* c2, float* c3) {
  __m256 x00 = _mm256_loadu_ps(c0), x01 = _mm256_loadu_ps(c0 + 8);
  __m256 x10 = _mm256_loadu_ps(c1), x11 = _mm256_loadu_ps(c1 + 8);
  __m256 x20 = _mm256_loadu_ps(c2), x21 = _mm256_loadu_ps(c2 + 8);
  __m256 x30 = _mm256_loadu_ps(c3), x31 = _mm256_loadu_ps(c3 + 8);
  for (std::int64_t p = 0; p < kb; ++p) {
    const float* bp = b + p * ldb;
    const __m256 b0 = _mm256_loadu_ps(bp);
    const __m256 b1 = _mm256_loadu_ps(bp + 8);
    __m256 v = _mm256_broadcast_ss(a0 + p);
    x00 = _mm256_fmadd_ps(v, b0, x00);
    x01 = _mm256_fmadd_ps(v, b1, x01);
    v = _mm256_broadcast_ss(a1 + p);
    x10 = _mm256_fmadd_ps(v, b0, x10);
    x11 = _mm256_fmadd_ps(v, b1, x11);
    v = _mm256_broadcast_ss(a2 + p);
    x20 = _mm256_fmadd_ps(v, b0, x20);
    x21 = _mm256_fmadd_ps(v, b1, x21);
    v = _mm256_broadcast_ss(a3 + p);
    x30 = _mm256_fmadd_ps(v, b0, x30);
    x31 = _mm256_fmadd_ps(v, b1, x31);
  }
  _mm256_storeu_ps(c0, x00);
  _mm256_storeu_ps(c0 + 8, x01);
  _mm256_storeu_ps(c1, x10);
  _mm256_storeu_ps(c1 + 8, x11);
  _mm256_storeu_ps(c2, x20);
  _mm256_storeu_ps(c2 + 8, x21);
  _mm256_storeu_ps(c3, x30);
  _mm256_storeu_ps(c3 + 8, x31);
}

__attribute__((target("avx2,fma"))) inline void panel_f32_1x16(
    std::int64_t kb, const float* ai, const float* b, std::int64_t ldb,
    float* ci) {
  __m256 x0 = _mm256_loadu_ps(ci), x1 = _mm256_loadu_ps(ci + 8);
  for (std::int64_t p = 0; p < kb; ++p) {
    const float* bp = b + p * ldb;
    const __m256 v = _mm256_broadcast_ss(ai + p);
    x0 = _mm256_fmadd_ps(v, _mm256_loadu_ps(bp), x0);
    x1 = _mm256_fmadd_ps(v, _mm256_loadu_ps(bp + 8), x1);
  }
  _mm256_storeu_ps(ci, x0);
  _mm256_storeu_ps(ci + 8, x1);
}

__attribute__((target("avx2,fma"))) inline void panel_f32_1x8(
    std::int64_t kb, const float* ai, const float* b, std::int64_t ldb,
    float* ci) {
  __m256 x0 = _mm256_loadu_ps(ci);
  for (std::int64_t p = 0; p < kb; ++p)
    x0 = _mm256_fmadd_ps(_mm256_broadcast_ss(ai + p),
                         _mm256_loadu_ps(b + p * ldb), x0);
  _mm256_storeu_ps(ci, x0);
}

__attribute__((target("avx2,fma"))) void block_f32_avx2(
    std::int64_t mb, std::int64_t nb, std::int64_t kb, const float* a,
    std::int64_t lda, const float* b, std::int64_t ldb, float* c,
    std::int64_t ldc) {
  std::int64_t j = 0;
  for (; j + 16 <= nb; j += 16) {
    const float* bj = b + j;
    float* cj = c + j;
    std::int64_t i = 0;
    for (; i + 4 <= mb; i += 4)
      panel_f32_4x16(kb, a + (i + 0) * lda, a + (i + 1) * lda,
                     a + (i + 2) * lda, a + (i + 3) * lda, bj, ldb,
                     cj + (i + 0) * ldc, cj + (i + 1) * ldc,
                     cj + (i + 2) * ldc, cj + (i + 3) * ldc);
    for (; i < mb; ++i)
      panel_f32_1x16(kb, a + i * lda, bj, ldb, cj + i * ldc);
  }
  for (; j + 8 <= nb; j += 8) {
    for (std::int64_t i = 0; i < mb; ++i)
      panel_f32_1x8(kb, a + i * lda, b + j, ldb, c + i * ldc + j);
  }
  if (j < nb) {
    // Sub-lane column tail: same serial fmaf fold, element for element.
    for (std::int64_t i = 0; i < mb; ++i) {
      const float* ai = a + i * lda;
      float* ci = c + i * ldc;
      for (std::int64_t p = 0; p < kb; ++p) {
        const float v = ai[p];
        const float* bp = b + p * ldb;
        for (std::int64_t jj = j; jj < nb; ++jj)
          ci[jj] = std::fmaf(v, bp[jj], ci[jj]);
      }
    }
  }
}

// ---------------------------------------------------------------------
// AVX2 integer kernels. Exact: every path widens to int64 before any
// value could saturate, and integer addition commutes, so the vector
// lane order needs no contract at all.

// Sums 8 int32 lanes into an int64 (widening first — the lanes alone
// can hold up to kS8KBlock/16 pair-sums of 2^15 each).
__attribute__((target("avx2"))) inline std::int64_t hsum_epi32_wide(
    __m256i v) {
  const __m256i lo = _mm256_cvtepi32_epi64(_mm256_castsi256_si128(v));
  const __m256i hi = _mm256_cvtepi32_epi64(_mm256_extracti128_si256(v, 1));
  const __m256i s = _mm256_add_epi64(lo, hi);
  alignas(32) std::int64_t t[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(t), s);
  return t[0] + t[1] + t[2] + t[3];
}

__attribute__((target("avx2"))) inline std::int64_t hsum_epi64(__m256i v) {
  alignas(32) std::int64_t t[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(t), v);
  return t[0] + t[1] + t[2] + t[3];
}

// K-block bound for the int8 kernel's int32 pair-sum accumulators:
// each madd lane adds one pair-sum of |.| <= 2^15 per 16 K steps, so a
// 2^16-wide block keeps lanes <= 2^27 — far from int32 saturation.
constexpr std::int64_t kS8KBlock = std::int64_t{1} << 16;

__attribute__((target("avx2"))) void block_s8_avx2(std::int64_t m,
                                                   std::int64_t n,
                                                   std::int64_t k,
                                                   const std::int8_t* a,
                                                   const std::int8_t* b,
                                                   std::int64_t* c) {
  for (std::int64_t i = 0; i < m; ++i) {
    const std::int8_t* ai = a + i * k;
    std::int64_t* ci = c + i * n;
    std::int64_t j = 0;
    for (; j + 4 <= n; j += 4) {
      const std::int8_t* b0 = b + (j + 0) * k;
      const std::int8_t* b1 = b + (j + 1) * k;
      const std::int8_t* b2 = b + (j + 2) * k;
      const std::int8_t* b3 = b + (j + 3) * k;
      std::int64_t s0 = 0, s1 = 0, s2 = 0, s3 = 0;
      for (std::int64_t p0 = 0; p0 < k; p0 += kS8KBlock) {
        const std::int64_t pend = p0 + std::min(kS8KBlock, k - p0);
        __m256i a0 = _mm256_setzero_si256(), a1 = _mm256_setzero_si256();
        __m256i a2 = _mm256_setzero_si256(), a3 = _mm256_setzero_si256();
        std::int64_t p = p0;
        for (; p + 16 <= pend; p += 16) {
          const __m256i av = _mm256_cvtepi8_epi16(_mm_loadu_si128(
              reinterpret_cast<const __m128i*>(ai + p)));
          a0 = _mm256_add_epi32(
              a0, _mm256_madd_epi16(
                      av, _mm256_cvtepi8_epi16(_mm_loadu_si128(
                              reinterpret_cast<const __m128i*>(b0 + p)))));
          a1 = _mm256_add_epi32(
              a1, _mm256_madd_epi16(
                      av, _mm256_cvtepi8_epi16(_mm_loadu_si128(
                              reinterpret_cast<const __m128i*>(b1 + p)))));
          a2 = _mm256_add_epi32(
              a2, _mm256_madd_epi16(
                      av, _mm256_cvtepi8_epi16(_mm_loadu_si128(
                              reinterpret_cast<const __m128i*>(b2 + p)))));
          a3 = _mm256_add_epi32(
              a3, _mm256_madd_epi16(
                      av, _mm256_cvtepi8_epi16(_mm_loadu_si128(
                              reinterpret_cast<const __m128i*>(b3 + p)))));
        }
        s0 += hsum_epi32_wide(a0);
        s1 += hsum_epi32_wide(a1);
        s2 += hsum_epi32_wide(a2);
        s3 += hsum_epi32_wide(a3);
        for (; p < pend; ++p) {
          const std::int32_t av = ai[p];
          s0 += av * static_cast<std::int32_t>(b0[p]);
          s1 += av * static_cast<std::int32_t>(b1[p]);
          s2 += av * static_cast<std::int32_t>(b2[p]);
          s3 += av * static_cast<std::int32_t>(b3[p]);
        }
      }
      ci[j + 0] = s0;
      ci[j + 1] = s1;
      ci[j + 2] = s2;
      ci[j + 3] = s3;
    }
    for (; j < n; ++j) {
      const std::int8_t* bj = b + j * k;
      std::int64_t s = 0;
      std::int64_t p = 0;
      __m256i acc = _mm256_setzero_si256();
      std::int64_t in_block = 0;
      for (; p + 16 <= k; p += 16) {
        const __m256i av = _mm256_cvtepi8_epi16(
            _mm_loadu_si128(reinterpret_cast<const __m128i*>(ai + p)));
        const __m256i bv = _mm256_cvtepi8_epi16(
            _mm_loadu_si128(reinterpret_cast<const __m128i*>(bj + p)));
        acc = _mm256_add_epi32(acc, _mm256_madd_epi16(av, bv));
        if (++in_block == kS8KBlock / 16) {
          s += hsum_epi32_wide(acc);
          acc = _mm256_setzero_si256();
          in_block = 0;
        }
      }
      s += hsum_epi32_wide(acc);
      for (; p < k; ++p)
        s += static_cast<std::int32_t>(ai[p]) *
             static_cast<std::int32_t>(bj[p]);
      ci[j] = s;
    }
  }
}

__attribute__((target("avx2"))) inline __m256i s16_fma_epi64(
    __m256i acc, const std::int16_t* ap, const std::int16_t* bp) {
  const __m256i av = _mm256_cvtepi16_epi32(
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(ap)));
  const __m256i bv = _mm256_cvtepi16_epi32(
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(bp)));
  // Products of two 16-bit values fit int32 (<= 2^30); a *pair* of them
  // does not, hence no madd — widen each product to int64 instead.
  const __m256i prod = _mm256_mullo_epi32(av, bv);
  acc = _mm256_add_epi64(
      acc, _mm256_cvtepi32_epi64(_mm256_castsi256_si128(prod)));
  return _mm256_add_epi64(
      acc, _mm256_cvtepi32_epi64(_mm256_extracti128_si256(prod, 1)));
}

__attribute__((target("avx2"))) void block_s16_avx2(std::int64_t m,
                                                    std::int64_t n,
                                                    std::int64_t k,
                                                    const std::int16_t* a,
                                                    const std::int16_t* b,
                                                    std::int64_t* c) {
  for (std::int64_t i = 0; i < m; ++i) {
    const std::int16_t* ai = a + i * k;
    std::int64_t* ci = c + i * n;
    std::int64_t j = 0;
    for (; j + 2 <= n; j += 2) {
      const std::int16_t* b0 = b + (j + 0) * k;
      const std::int16_t* b1 = b + (j + 1) * k;
      __m256i a0 = _mm256_setzero_si256(), a1 = _mm256_setzero_si256();
      std::int64_t p = 0;
      for (; p + 8 <= k; p += 8) {
        a0 = s16_fma_epi64(a0, ai + p, b0 + p);
        a1 = s16_fma_epi64(a1, ai + p, b1 + p);
      }
      std::int64_t s0 = hsum_epi64(a0), s1 = hsum_epi64(a1);
      for (; p < k; ++p) {
        const std::int32_t av = ai[p];
        s0 += av * static_cast<std::int32_t>(b0[p]);
        s1 += av * static_cast<std::int32_t>(b1[p]);
      }
      ci[j + 0] = s0;
      ci[j + 1] = s1;
    }
    for (; j < n; ++j) {
      const std::int16_t* bj = b + j * k;
      __m256i acc = _mm256_setzero_si256();
      std::int64_t p = 0;
      for (; p + 8 <= k; p += 8) acc = s16_fma_epi64(acc, ai + p, bj + p);
      std::int64_t s = hsum_epi64(acc);
      for (; p < k; ++p)
        s += static_cast<std::int32_t>(ai[p]) *
             static_cast<std::int32_t>(bj[p]);
      ci[j] = s;
    }
  }
}

#endif  // QNN_MICROKERNEL_X86

// ---------------------------------------------------------------------
// Dispatch state.

std::atomic<int> g_forced_level{-1};  // -1 = none, else SimdLevel
std::atomic<int> g_env_level{-1};     // cached resolve_simd_level()

}  // namespace

const char* simd_level_name(SimdLevel level) {
  switch (level) {
    case SimdLevel::kScalar: return "scalar";
    case SimdLevel::kAvx2: return "avx2";
  }
  return "?";
}

SimdLevel simd_support() {
#if QNN_MICROKERNEL_X86
  static const bool avx2 =
      __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
  return avx2 ? SimdLevel::kAvx2 : SimdLevel::kScalar;
#else
  return SimdLevel::kScalar;
#endif
}

std::optional<SimdLevel> parse_simd_env(const std::string& value,
                                        bool* invalid) {
  if (invalid != nullptr) *invalid = false;
  if (value == "off" || value == "scalar") return SimdLevel::kScalar;
  if (value == "avx2") return SimdLevel::kAvx2;
  if (value.empty() || value == "auto") return std::nullopt;
  if (invalid != nullptr) *invalid = true;
  return std::nullopt;
}

SimdLevel resolve_simd_level() {
  const char* v = std::getenv("QNN_SIMD");
  if (v == nullptr) return simd_support();
  bool invalid = false;
  const std::optional<SimdLevel> choice = parse_simd_env(v, &invalid);
  if (invalid) {
    static std::atomic<bool> warned{false};
    if (!warned.exchange(true))
      QNN_LOG(Warn) << "ignoring QNN_SIMD=\"" << v
                    << "\" (want off|scalar|avx2|auto); using auto="
                    << simd_level_name(simd_support());
    return simd_support();
  }
  if (!choice.has_value()) return simd_support();  // auto
  if (*choice == SimdLevel::kAvx2 && simd_support() != SimdLevel::kAvx2) {
    static std::atomic<bool> warned{false};
    if (!warned.exchange(true))
      QNN_LOG(Warn) << "QNN_SIMD=avx2 requested but this CPU/build has no "
                       "AVX2+FMA; using scalar";
    return SimdLevel::kScalar;
  }
  return *choice;
}

SimdLevel active_simd_level() {
  const int forced = g_forced_level.load(std::memory_order_relaxed);
  if (forced >= 0) return static_cast<SimdLevel>(forced);
  int env = g_env_level.load(std::memory_order_relaxed);
  if (env < 0) {
    env = static_cast<int>(resolve_simd_level());
    g_env_level.store(env, std::memory_order_relaxed);
  }
  return static_cast<SimdLevel>(env);
}

std::optional<SimdLevel> set_forced_simd_level(
    std::optional<SimdLevel> level) {
  const int next = level.has_value() ? static_cast<int>(*level) : -1;
  const int prev = g_forced_level.exchange(next, std::memory_order_relaxed);
  if (prev < 0) return std::nullopt;
  return static_cast<SimdLevel>(prev);
}

void refresh_simd_env() {
  g_env_level.store(-1, std::memory_order_relaxed);
}

void gemm_block_f32(SimdLevel level, std::int64_t mb, std::int64_t nb,
                    std::int64_t kb, const float* a, std::int64_t lda,
                    const float* b, std::int64_t ldb, float* c,
                    std::int64_t ldc) {
#if QNN_MICROKERNEL_X86
  if (level == SimdLevel::kAvx2) {
    block_f32_avx2(mb, nb, kb, a, lda, b, ldb, c, ldc);
    return;
  }
#endif
  (void)level;
  block_f32_scalar(mb, nb, kb, a, lda, b, ldb, c, ldc);
}

void gemm_block_s8(SimdLevel level, std::int64_t m, std::int64_t n,
                   std::int64_t k, const std::int8_t* a, const std::int8_t* b,
                   std::int64_t* c) {
#if QNN_MICROKERNEL_X86
  if (level == SimdLevel::kAvx2) {
    block_s8_avx2(m, n, k, a, b, c);
    return;
  }
#endif
  (void)level;
  block_s8_scalar(m, n, k, a, b, c);
}

void gemm_block_s16(SimdLevel level, std::int64_t m, std::int64_t n,
                    std::int64_t k, const std::int16_t* a,
                    const std::int16_t* b, std::int64_t* c) {
#if QNN_MICROKERNEL_X86
  if (level == SimdLevel::kAvx2) {
    block_s16_avx2(m, n, k, a, b, c);
    return;
  }
#endif
  (void)level;
  block_s16_scalar(m, n, k, a, b, c);
}

}  // namespace qnn
