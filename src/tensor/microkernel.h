// SIMD microkernels and runtime dispatch (DESIGN.md §15).
//
// Every kernel here computes in the *canonical lane-striped order* that
// tensor/gemm.h defines: for a fixed output element, the K reduction is
// a serial left-fold of fused multiply-adds (one correctly-rounded
// rounding per step, std::fmaf == vfmadd231ps), and distinct output
// columns never mix — a vector register holds kGemmLanes consecutive
// columns j, j+1, ..., each accumulating its own element. Because lanes
// are independent and fma is correctly rounded by IEEE 754, the scalar
// fallback and the AVX2 kernel produce identical bytes by construction,
// not by codegen luck; the dispatch level is therefore free to differ
// between runs, builds, and machines without perturbing a single bit.
//
// The integer kernels accumulate in int64 (exact; integer addition is
// associative), so they are byte-stable at ANY lane or thread order.
//
// Dispatch: the active level resolves once from QNN_SIMD ("off"/
// "scalar", "avx2", "auto"/unset; anything else warns and falls back to
// auto, like QNN_THREADS) clamped to what CPUID reports, and can be
// forced programmatically for tests and benchmarks (ScopedSimdLevel).
#pragma once

#include <cstdint>
#include <optional>
#include <string>

namespace qnn {

// Vector width of the float microkernel: one AVX2 register of floats.
// The lane stripe is a pure function of shape — column j lives in lane
// j mod kGemmLanes of its 8-column group — and carries no cross-lane
// float arithmetic, so it exists only as a layout, never as an order.
inline constexpr std::int64_t kGemmLanes = 8;

enum class SimdLevel {
  kScalar = 0,  // portable fallback (fmaf per element, same order)
  kAvx2 = 1,    // AVX2 + FMA register-blocked kernels
};

const char* simd_level_name(SimdLevel level);

// Best level this CPU supports (CPUID probe, cached after first call).
SimdLevel simd_support();

// One QNN_SIMD spelling, hardened like ThreadPool::env_threads():
// "off"/"scalar" -> kScalar, "avx2" -> kAvx2, "auto"/"" -> nullopt
// (meaning: use simd_support()). Invalid spellings also return nullopt
// but set *invalid. Exposed for the dispatch unit tests.
std::optional<SimdLevel> parse_simd_env(const std::string& value,
                                        bool* invalid = nullptr);

// Resolves QNN_SIMD against simd_support() (reads the environment on
// every call; warns once per process on garbage or an unsupported
// request, then falls back).
SimdLevel resolve_simd_level();

// The level the kernels actually run at: a programmatic force when one
// is set, else the cached resolve_simd_level() result.
SimdLevel active_simd_level();

// Forces a level (tests/benches); nullopt returns to env/CPUID
// resolution. Returns the previous forced state. Not thread-safe
// against in-flight kernels — switch between forwards, not during.
std::optional<SimdLevel> set_forced_simd_level(std::optional<SimdLevel> level);

// Drops the cached QNN_SIMD resolution so the next active_simd_level()
// re-reads the environment (dispatch tests setenv between checks).
void refresh_simd_env();

class ScopedSimdLevel {
 public:
  explicit ScopedSimdLevel(SimdLevel level)
      : previous_(set_forced_simd_level(level)) {}
  ~ScopedSimdLevel() { set_forced_simd_level(previous_); }
  ScopedSimdLevel(const ScopedSimdLevel&) = delete;
  ScopedSimdLevel& operator=(const ScopedSimdLevel&) = delete;

 private:
  std::optional<SimdLevel> previous_;
};

// ---------------------------------------------------------------------
// Float block kernel: C[mb,nb] += A[mb,kb] * B[kb,nb], row-major with
// leading dimensions lda/ldb/ldc. Per output element the K fold runs
// p = 0..kb-1 with one fused multiply-add per step — identical bytes at
// every level (see header comment). gemm.cc routes every cache block of
// every gemm variant through this entry.
void gemm_block_f32(SimdLevel level, std::int64_t mb, std::int64_t nb,
                    std::int64_t kb, const float* a, std::int64_t lda,
                    const float* b, std::int64_t ldb, float* c,
                    std::int64_t ldc);

// ---------------------------------------------------------------------
// Integer block kernels, dot-product layout: C[M,N] = A[M,K] * B[N,K]^T
// with both operands row-contiguous and C an int64 accumulator image
// (overwritten). Exact at any lane/block order. The int8 kernel uses
// 16-bit madd pair-sums into int32 blocks widened to int64 (pair sums
// are <= 2^15, and blocks are re-widened long before int32 could
// saturate); the int16 kernel widens every product to int64 (a pair of
// extreme 16-bit products overflows int32, so there is no safe madd).
void gemm_block_s8(SimdLevel level, std::int64_t m, std::int64_t n,
                   std::int64_t k, const std::int8_t* a, const std::int8_t* b,
                   std::int64_t* c);
void gemm_block_s16(SimdLevel level, std::int64_t m, std::int64_t n,
                    std::int64_t k, const std::int16_t* a,
                    const std::int16_t* b, std::int64_t* c);

}  // namespace qnn
