#include "tensor/tensor.h"

#include <algorithm>
#include <cmath>

namespace qnn {

Tensor::Tensor(Shape shape, std::vector<float> data)
    : shape_(std::move(shape)), data_(std::move(data)) {
  QNN_CHECK_MSG(static_cast<std::int64_t>(data_.size()) == shape_.count(),
                "data size " << data_.size() << " does not match shape "
                             << shape_.to_string());
}

void Tensor::fill(float v) { std::fill(data_.begin(), data_.end(), v); }

Tensor Tensor::reshaped(Shape new_shape) const {
  QNN_CHECK_MSG(new_shape.count() == shape_.count(),
                "reshape " << shape_.to_string() << " -> "
                           << new_shape.to_string());
  return Tensor(std::move(new_shape), data_);
}

void Tensor::add(const Tensor& other) {
  QNN_CHECK(other.count() == count());
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
}

void Tensor::axpy(float alpha, const Tensor& x) {
  QNN_CHECK(x.count() == count());
  for (std::size_t i = 0; i < data_.size(); ++i)
    data_[i] += alpha * x.data_[i];
}

void Tensor::scale(float alpha) {
  for (float& v : data_) v *= alpha;
}

float Tensor::max_abs() const {
  float m = 0.0f;
  for (float v : data_) m = std::max(m, std::fabs(v));
  return m;
}

double Tensor::sum() const {
  double s = 0.0;
  for (float v : data_) s += v;
  return s;
}

double Tensor::mean() const {
  return data_.empty() ? 0.0 : sum() / static_cast<double>(data_.size());
}

void Tensor::fill_uniform(Rng& rng, float lo, float hi) {
  for (float& v : data_) v = static_cast<float>(rng.uniform(lo, hi));
}

void Tensor::fill_normal(Rng& rng, float mean, float stddev) {
  for (float& v : data_) v = static_cast<float>(rng.normal(mean, stddev));
}

}  // namespace qnn
