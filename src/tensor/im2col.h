// im2col / col2im lowering for convolution.
//
// im2col unfolds each (kernel-sized) receptive field of a single image
// into one column so convolution becomes a GEMM:
//   output[Cout, OH*OW] = W[Cout, Cin*KH*KW] * cols[Cin*KH*KW, OH*OW].
// col2im is its adjoint and is used for the input gradient.
#pragma once

#include <cstdint>

namespace qnn {

// Geometry of a 2-D sliding-window op (convolution or pooling).
struct ConvGeometry {
  std::int64_t in_c = 0, in_h = 0, in_w = 0;
  std::int64_t kernel_h = 0, kernel_w = 0;
  std::int64_t stride_h = 1, stride_w = 1;
  std::int64_t pad_h = 0, pad_w = 0;

  std::int64_t out_h() const {
    return (in_h + 2 * pad_h - kernel_h) / stride_h + 1;
  }
  std::int64_t out_w() const {
    return (in_w + 2 * pad_w - kernel_w) / stride_w + 1;
  }
  // Rows of the unfolded matrix.
  std::int64_t col_rows() const { return in_c * kernel_h * kernel_w; }
  // Columns of the unfolded matrix.
  std::int64_t col_cols() const { return out_h() * out_w(); }
};

// `image` is one sample, CHW contiguous; `cols` has room for
// col_rows() * col_cols() floats. Out-of-bounds taps read as zero.
void im2col(const ConvGeometry& g, const float* image, float* cols);

// Adjoint: accumulates `cols` back into `image` (image must be
// zero-initialized by the caller).
void col2im(const ConvGeometry& g, const float* cols, float* image);

}  // namespace qnn
