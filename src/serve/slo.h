// Per-tier SLO roll-up of one serving run (DESIGN.md §14).
//
// Folds a ServeResult's responses and attribution ledger into the block
// the benches and CI gate on: for each precision tier that actually
// served traffic, the in-deadline fraction, exact p50/p99 of the stage
// breakdown (queue+batch wait, execution, end-to-end latency), and
// attributed energy per served request. Quantiles here are exact
// nearest-rank over the run's own samples (not histogram-bucketed):
// the response set is small and fully materialized, so there is no
// reason to approximate. Sentinel -1.0 marks "no samples", matching
// obs::kQuantileNoSamples.
//
// `conserved` re-states the admission conservation invariant from the
// summary's own numbers (sum of per-tier served == stats.served ==
// responses.size(), admitted == served + expired + failed), so a
// consumer of BENCH_serve.json can verify self-consistency without
// trusting the producer.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "serve/server.h"
#include "util/json.h"

namespace qnn::serve {

struct TierSlo {
  int tier = 0;
  std::string name;
  std::int64_t served = 0;
  std::int64_t within_deadline = 0;
  double in_deadline_fraction = 0.0;
  // Exact nearest-rank quantiles over this tier's responses; -1.0 when
  // the tier served nothing.
  double p50_queue_wait_ticks = -1.0;
  double p99_queue_wait_ticks = -1.0;
  double p50_execute_ticks = -1.0;
  double p99_execute_ticks = -1.0;
  double p50_latency_ticks = -1.0;
  double p99_latency_ticks = -1.0;
  double energy_per_request_pj = 0.0;  // attributed, incl. wasted share
};

struct SloSummary {
  std::vector<TierSlo> tiers;  // tier order; only tiers that served > 0
  std::int64_t served = 0;
  std::int64_t admitted = 0;
  std::int64_t expired_in_queue = 0;
  std::int64_t failed = 0;
  std::int64_t within_deadline = 0;
  double total_energy_pj = 0.0;      // every execution, incl. discarded
  double published_energy_pj = 0.0;  // executions whose result shipped
  double wasted_energy_pj = 0.0;
  double energy_per_request_pj = 0.0;  // total / served (0 when none)
  // Conservation restated from the summary's own numbers.
  bool conserved = false;
};

SloSummary make_slo_summary(const ServeResult& result,
                            const std::vector<TierSpec>& tiers);

json::Value slo_to_json(const SloSummary& slo);

}  // namespace qnn::serve
