#include "serve/executors.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <utility>

#include "faults/fault_model.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/check.h"
#include "util/rng.h"

namespace qnn::serve {
namespace {

struct LaneMetrics {
  obs::Counter dispatches, retries, redirects, hung, corrupt, crashed,
      discarded, failed;
};

LaneMetrics& lane_metrics() {
  obs::Registry& r = obs::Registry::global();
  static LaneMetrics m{r.counter("serve.lane.dispatches"),
                       r.counter("serve.lane.retries"),
                       r.counter("serve.lane.redirects"),
                       r.counter("serve.lane.hung"),
                       r.counter("serve.lane.corrupt"),
                       r.counter("serve.lane.crashed"),
                       r.counter("serve.lane.discarded"),
                       r.counter("serve.lane.failed_requests")};
  return m;
}

// A poisoned output is definite evidence the replica (not the input) is
// broken: frozen inference over finite inputs cannot produce NaN/Inf
// through a healthy lane, because every activation site was quantized
// onto a finite grid.
bool output_poisoned(const Tensor& t) {
  const float* p = t.data();
  const std::int64_t n = t.count();
  for (std::int64_t i = 0; i < n; ++i) {
    if (std::isnan(p[i]) || std::isinf(p[i])) return true;
  }
  return false;
}

// Applies a corrupt-lane fault: `corrupt_flips` single-bit upsets at
// seed-derived sites across the replica's frozen parameter image
// (FloatCodec — the in-memory storage is float32 regardless of the
// logical format).
void corrupt_replica_params(quant::QuantizedNetwork& replica,
                            const faults::LaneFault& f) {
  const faults::FloatCodec codec;
  std::vector<nn::Param*> params = replica.trainable_params();
  QNN_CHECK_MSG(!params.empty(), "corrupt fault on a network without params");
  Rng rng(f.seed);
  for (int k = 0; k < f.corrupt_flips; ++k) {
    nn::Param* p = params[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<int>(params.size()) - 1))];
    const std::int64_t i =
        rng.uniform_int(0, static_cast<int>(p->value.count()) - 1);
    const int bit = rng.uniform_int(0, codec.bits() - 1);
    p->value.data()[i] = codec.flip(p->value.data()[i], bit);
  }
}

}  // namespace

ExecutorGroup::ExecutorGroup(ReplicaPool& pool, const ExecutorConfig& config,
                             const HealthConfig& health,
                             const faults::LaneFaultSchedule* chaos,
                             RequestTracer* tracer,
                             obs::AttributionLedger* ledger)
    : pool_(pool),
      config_(config),
      health_(pool.num_lanes(), health),
      chaos_(chaos),
      tracer_(tracer),
      ledger_(ledger),
      lanes_(static_cast<std::size_t>(pool.num_lanes())),
      round_robin_(static_cast<std::size_t>(pool.num_tiers()), 0) {
  QNN_CHECK_MSG(config.watchdog_budget_factor >= 1.0,
                "watchdog budget factor must be >= 1");
  QNN_CHECK_MSG(config.max_attempts >= 1, "max_attempts must be positive");
  QNN_CHECK_MSG(config.retry_backoff_ticks >= 0, "retry backoff must be >= 0");
  if (chaos_ != nullptr) faults::validate_schedule(*chaos_);
  for (int t = 0; t < pool_.num_tiers(); ++t) {
    for (int r = 0; r < pool_.replicas_per_tier(); ++r) {
      Lane& lane = lanes_[static_cast<std::size_t>(pool_.lane_index(t, r))];
      lane.tier = t;
      lane.replica = r;
    }
  }
  if (tracer_ != nullptr && tracer_->enabled()) {
    // Mirror every health transition into the causal log as a
    // lane-scoped event, at the tick the lattice recorded it.
    health_.set_observer([this](const HealthTransition& t) {
      tracer_->record(t.tick, /*request_id=*/-1, RequestEventKind::kHealth,
                      lanes_[static_cast<std::size_t>(t.lane)].tier, t.lane,
                      /*attempt=*/0, static_cast<std::int64_t>(t.reason),
                      static_cast<std::int64_t>(t.to));
    });
  }
}

Tick ExecutorGroup::next_event_tick() const {
  Tick next = kNoTick;
  const auto consider = [&next](Tick t) {
    if (t >= 0 && (next == kNoTick || t < next)) next = t;
  };
  for (const Lane& lane : lanes_) {
    if (lane.busy) {
      consider(lane.completion);
      if (!lane.doomed) consider(lane.watchdog_due);
    } else {
      // An idle quarantined lane wakes the loop when its rescrub comes
      // due. A busy (wedged) one does not: its rescrub waits for the
      // completion, which is already an event above.
      consider(health_.rescrub_due(pool_.lane_index(lane.tier, lane.replica)));
    }
  }
  if (chaos_ != nullptr && next_fault_ < chaos_->faults.size()) {
    consider(chaos_->faults[next_fault_].at_tick);
  }
  // Backoffs: only strictly-future not_before ticks are events; an
  // already-eligible pending batch is waiting on a lane, and lane state
  // only changes at one of the ticks above.
  for (const PendingBatch& p : pending_) {
    if (p.not_before > vnow_) consider(p.not_before);
  }
  return next;
}

void ExecutorGroup::submit(Batch b) {
  if (b.requests.empty()) return;
  pending_.push_back(PendingBatch{std::move(b), /*attempt=*/1,
                                  /*not_before=*/0});
}

void ExecutorGroup::fail_batch(Batch b, std::vector<Request>* failed) {
  stats_.failed_requests += static_cast<std::int64_t>(b.requests.size());
  lane_metrics().failed.add(static_cast<std::int64_t>(b.requests.size()));
  for (Request& r : b.requests) {
    r.trace.record(vnow_, RequestEventKind::kFail, b.tier);
    failed->push_back(std::move(r));
  }
}

void ExecutorGroup::requeue_or_fail(Batch b, int attempt, Tick now,
                                    std::vector<Request>* failed) {
  if (!config_.redirect_on_failure || attempt > config_.max_attempts) {
    fail_batch(std::move(b), failed);
    return;
  }
  ++stats_.retries;
  lane_metrics().retries.inc();
  Tick backoff = 0;
  if (config_.retry_backoff_ticks > 0 && attempt >= 2) {
    backoff = config_.retry_backoff_ticks << (attempt - 2);
  }
  for (const Request& r : b.requests) {
    r.trace.record(now, RequestEventKind::kRetry, b.tier, /*lane=*/-1, attempt,
                   /*detail=*/now + backoff);
  }
  // Retries jump the queue: they carry the oldest deadlines.
  pending_.push_front(PendingBatch{std::move(b), attempt, now + backoff});
}

bool ExecutorGroup::tier_schedulable(int t) const {
  for (int r = 0; r < pool_.replicas_per_tier(); ++r) {
    if (health_.schedulable(pool_.lane_index(t, r))) return true;
  }
  return false;
}

int ExecutorGroup::resolve_tier(int preferred) const {
  if (tier_schedulable(preferred)) return preferred;
  if (config_.redirect_on_failure) {
    // Down the precision lattice first (cheaper tiers), then back up.
    for (int t = preferred + 1; t < pool_.num_tiers(); ++t) {
      if (tier_schedulable(t)) return t;
    }
    for (int t = preferred - 1; t >= 0; --t) {
      if (tier_schedulable(t)) return t;
    }
  }
  // Nothing schedulable. Quarantined lanes will be rescrubbed and
  // return; dead ones will not.
  for (int i = 0; i < health_.num_lanes(); ++i) {
    const bool candidate =
        config_.redirect_on_failure ||
        lanes_[static_cast<std::size_t>(i)].tier == preferred;
    if (candidate && health_.state(i) == LaneState::kQuarantined) {
      return kTierWait;
    }
  }
  return kTierNever;
}

int ExecutorGroup::pick_lane(int t) const {
  const int n = pool_.replicas_per_tier();
  const int start = round_robin_[static_cast<std::size_t>(t)];
  for (int k = 0; k < n; ++k) {
    const int r = (start + k) % n;
    const int lane = pool_.lane_index(t, r);
    if (!health_.schedulable(lane)) continue;
    if (lanes_[static_cast<std::size_t>(lane)].busy) continue;
    return lane;
  }
  return -1;
}

void ExecutorGroup::execute(Lane& lane, Batch b, int attempt, Tick now) {
  QNN_SPAN_N("lane_dispatch", "serve",
             static_cast<std::int64_t>(b.requests.size()));
  const TierSpec& tier = pool_.tier(lane.tier);
  const std::size_t batch_n = b.requests.size();

  // Assemble the batch input from the per-request payload rows.
  const Shape& sample = b.requests.front().payload.shape();
  const std::int64_t per_row = b.requests.front().payload.count();
  std::vector<std::int64_t> dims = sample.dims();
  dims[0] = static_cast<std::int64_t>(batch_n);
  Tensor input{Shape(dims)};
  for (std::size_t i = 0; i < batch_n; ++i) {
    QNN_CHECK_MSG(b.requests[i].payload.count() == per_row,
                  "mixed payload shapes inside one batch");
    std::memcpy(input.data() + static_cast<std::int64_t>(i) * per_row,
                b.requests[i].payload.data(),
                static_cast<std::size_t>(per_row) * sizeof(float));
  }

  Tensor output = pool_.forward(lane.tier, lane.replica, input);
  QNN_CHECK_MSG(output.shape().rank() == 2 &&
                    output.shape()[0] == static_cast<std::int64_t>(batch_n),
                "replica output is not (batch, classes)");

  const Tick modeled = tier.batch_overhead_ticks +
                       static_cast<Tick>(batch_n) * tier.ticks_per_image;
  Tick service = modeled;
  if (lane.hang_ticks > 0) {  // armed hang fault wedges this dispatch
    service += lane.hang_ticks;
    lane.hang_ticks = 0;
  }
  const Tick budget = std::max<Tick>(
      modeled, static_cast<Tick>(std::llround(config_.watchdog_budget_factor *
                                              static_cast<double>(modeled))));

  lane.busy = true;
  lane.batch = std::move(b);
  lane.output = std::move(output);
  lane.attempt = attempt;
  lane.dispatch_tick = now;
  lane.completion = now + service;
  lane.watchdog_due = service > budget ? now + budget : kNoTick;
  lane.doomed = false;

  ++stats_.executions;
  stats_.energy_uj += static_cast<double>(batch_n) * tier.energy_per_image_uj;
  lane_metrics().dispatches.inc();

  // Attribution: every member of the batch is charged the tier's
  // per-image cost at dispatch, published or not — discarded executions
  // become the request's wasted-energy share (DESIGN.md §14).
  const int li = pool_.lane_index(lane.tier, lane.replica);
  for (const Request& r : lane.batch.requests) {
    r.trace.record(now, RequestEventKind::kDispatch, lane.tier, li, attempt);
    if (ledger_ != nullptr) {
      ledger_->charge(obs::EnergyCharge{r.id, now, lane.tier, li, attempt,
                                        tier.macs_per_image,
                                        tier.energy_per_image_uj * 1e6,
                                        /*published=*/false});
    }
  }
  lane.exec_record = RequestTracer::kNoExecution;
  if (tracer_ != nullptr && tracer_->enabled()) {
    LaneExecution ex;
    ex.lane = li;
    ex.tier = lane.tier;
    ex.replica = lane.replica;
    ex.attempt = attempt;
    ex.dispatch = now;
    ex.completion = lane.completion;
    ex.batch_n = static_cast<std::int64_t>(batch_n);
    ex.energy_pj =
        static_cast<double>(batch_n) * tier.energy_per_image_uj * 1e6;
    for (const Request& r : lane.batch.requests) ex.request_ids.push_back(r.id);
    lane.exec_record = tracer_->begin_execution(std::move(ex));
  }
}

void ExecutorGroup::apply_due_faults(Tick now, std::vector<Request>* failed) {
  if (chaos_ == nullptr) return;
  while (next_fault_ < chaos_->faults.size() &&
         chaos_->faults[next_fault_].at_tick <= now) {
    const faults::LaneFault& f = chaos_->faults[next_fault_++];
    QNN_CHECK_MSG(
        f.tier < pool_.num_tiers() && f.replica < pool_.replicas_per_tier(),
        "lane fault targets nonexistent lane (" << f.tier << "," << f.replica
                                                << ")");
    const int li = pool_.lane_index(f.tier, f.replica);
    Lane& lane = lanes_[static_cast<std::size_t>(li)];
    if (health_.state(li) == LaneState::kDead) continue;  // already gone
    switch (f.kind) {
      case faults::LaneFaultKind::kHangLane:
        lane.hang_ticks += f.hang_ticks;
        break;
      case faults::LaneFaultKind::kCorruptLane:
        corrupt_replica_params(pool_.replica(f.tier, f.replica), f);
        break;
      case faults::LaneFaultKind::kCrashLane: {
        health_.on_crash(now, li);
        if (lane.busy) {
          lane.busy = false;
          lane.output = Tensor();
          Batch b = std::move(lane.batch);
          lane.batch = Batch{};
          if (tracer_ != nullptr) {
            tracer_->finish_execution(lane.exec_record, now,
                                      lane.doomed
                                          ? LaneExecution::Outcome::kDoomed
                                          : LaneExecution::Outcome::kCrashed);
          }
          lane.exec_record = RequestTracer::kNoExecution;
          if (lane.doomed) {
            // The watchdog already condemned and re-dispatched this
            // batch; the crash just ends the wedged execution early.
            ++stats_.discarded;
            lane_metrics().discarded.inc();
          } else {
            // The in-flight batch dies with the lane.
            ++stats_.crashed_batches;
            lane_metrics().crashed.inc();
            for (const Request& r : b.requests) {
              r.trace.record(now, RequestEventKind::kCrash, lane.tier, li,
                             lane.attempt);
            }
            requeue_or_fail(std::move(b), lane.attempt + 1, now, failed);
          }
        }
        break;
      }
    }
  }
}

void ExecutorGroup::fire_watchdogs(Tick now, std::vector<Request>* failed) {
  for (Lane& lane : lanes_) {
    if (!lane.busy || lane.doomed) continue;
    if (lane.watchdog_due == kNoTick || lane.watchdog_due > now) continue;
    // Hung: the wedged lane keeps "running" until its (inflated)
    // completion, but its result is already condemned and the batch
    // re-dispatches now.
    ++stats_.hung_batches;
    lane_metrics().hung.inc();
    const int li = pool_.lane_index(lane.tier, lane.replica);
    for (const Request& r : lane.batch.requests) {
      r.trace.record(now, RequestEventKind::kHang, lane.tier, li,
                     lane.attempt);
    }
    if (config_.redirect_on_failure) {
      health_.on_hang(now, li);
    } else {
      health_.on_fail_stop(now, li);
    }
    lane.doomed = true;
    Batch b = std::move(lane.batch);
    lane.batch = Batch{};
    requeue_or_fail(std::move(b), lane.attempt + 1, now, failed);
  }
}

void ExecutorGroup::retire_completions(Tick now,
                                       std::vector<ExecutedBatch>* done,
                                       std::vector<Request>* failed) {
  for (Lane& lane : lanes_) {
    if (!lane.busy || lane.completion > now) continue;
    lane.busy = false;
    Batch b = std::move(lane.batch);
    Tensor output = std::move(lane.output);
    lane.batch = Batch{};
    lane.output = Tensor();
    if (lane.doomed) {  // condemned by the watchdog; batch already moved on
      ++stats_.discarded;
      lane_metrics().discarded.inc();
      if (tracer_ != nullptr) {
        tracer_->finish_execution(lane.exec_record, lane.completion,
                                  LaneExecution::Outcome::kDoomed);
      }
      lane.exec_record = RequestTracer::kNoExecution;
      continue;
    }
    const int li = pool_.lane_index(lane.tier, lane.replica);
    // Completion audit: a poisoned output or a parameter image that no
    // longer matches the tier's golden CRC taints the result.
    const bool tainted = output_poisoned(output) ||
                         pool_.param_crc(lane.tier, lane.replica) !=
                             pool_.golden_param_crc(lane.tier);
    if (tainted) {
      ++stats_.corrupt_batches;
      lane_metrics().corrupt.inc();
      ++stats_.discarded;
      lane_metrics().discarded.inc();
      for (const Request& r : b.requests) {
        r.trace.record(now, RequestEventKind::kCorrupt, lane.tier, li,
                       lane.attempt);
      }
      if (tracer_ != nullptr) {
        tracer_->finish_execution(lane.exec_record, lane.completion,
                                  LaneExecution::Outcome::kDiscardedCorrupt);
      }
      lane.exec_record = RequestTracer::kNoExecution;
      if (config_.redirect_on_failure) {
        health_.on_corrupt(now, li);
      } else {
        health_.on_fail_stop(now, li);
      }
      requeue_or_fail(std::move(b), lane.attempt + 1, now, failed);
      continue;
    }
    for (const Request& r : b.requests) {
      r.trace.record(lane.completion, RequestEventKind::kComplete, lane.tier,
                     li, lane.attempt);
      if (ledger_ != nullptr) ledger_->mark_published(r.id, lane.attempt);
    }
    if (tracer_ != nullptr) {
      tracer_->finish_execution(lane.exec_record, lane.completion,
                                LaneExecution::Outcome::kPublished);
    }
    lane.exec_record = RequestTracer::kNoExecution;
    ExecutedBatch eb;
    eb.batch = std::move(b);
    eb.output = std::move(output);
    eb.replica = lane.replica;
    eb.attempt = lane.attempt;
    eb.dispatch = lane.dispatch_tick;
    eb.completion = lane.completion;
    done->push_back(std::move(eb));
  }
}

void ExecutorGroup::perform_due_rescrubs(Tick now) {
  for (int li : health_.due_rescrubs(now)) {
    const Lane& lane = lanes_[static_cast<std::size_t>(li)];
    if (lane.busy) continue;  // wedged; rescrub after its completion
    QNN_SPAN_N("lane_rescrub", "serve", li);
    const bool ok = pool_.rescrub_replica(lane.tier, lane.replica);
    if (tracer_ != nullptr) {
      tracer_->record(now, /*request_id=*/-1, RequestEventKind::kRescrub,
                      lane.tier, li, /*attempt=*/0, /*detail=*/ok ? 1 : 0);
    }
    health_.on_rescrubbed(now, li, ok);
  }
}

void ExecutorGroup::advance(Tick now, std::vector<ExecutedBatch>* done,
                            std::vector<Request>* expired,
                            std::vector<Request>* failed) {
  (void)expired;
  vnow_ = now;
  apply_due_faults(now, failed);
  fire_watchdogs(now, failed);
  retire_completions(now, done, failed);
  perform_due_rescrubs(now);
}

void ExecutorGroup::dispatch(Tick now, std::vector<Request>* expired,
                             std::vector<Request>* failed) {
  vnow_ = now;
  for (std::size_t i = 0; i < pending_.size();) {
    PendingBatch& entry = pending_[i];
    if (entry.not_before > now) {
      ++i;
      continue;
    }
    // Deadline-passed members can no longer be served; executing them
    // would burn lane time on broken contracts.
    auto& reqs = entry.batch.requests;
    for (auto it = reqs.begin(); it != reqs.end();) {
      if (it->deadline <= now) {
        it->trace.record(now, RequestEventKind::kExpire, it->tier,
                         /*lane=*/-1, /*attempt=*/0, /*detail=*/1);
        expired->push_back(std::move(*it));
        it = reqs.erase(it);
      } else {
        ++it;
      }
    }
    if (reqs.empty()) {
      pending_.erase(pending_.begin() + static_cast<std::ptrdiff_t>(i));
      continue;
    }
    const int target = resolve_tier(entry.batch.tier);
    if (target == kTierWait) {
      ++i;  // a quarantined lane will come back
      continue;
    }
    if (target == kTierNever) {
      Batch b = std::move(entry.batch);
      pending_.erase(pending_.begin() + static_cast<std::ptrdiff_t>(i));
      fail_batch(std::move(b), failed);
      continue;
    }
    const int li = pick_lane(target);
    if (li < 0) {
      ++i;  // every schedulable lane in the tier is busy; wait
      continue;
    }
    if (target != entry.batch.tier) {  // redirect across the lattice
      stats_.redirected_requests += static_cast<std::int64_t>(reqs.size());
      lane_metrics().redirects.add(static_cast<std::int64_t>(reqs.size()));
      const int old_tier = entry.batch.tier;
      entry.batch.tier = target;
      for (Request& r : reqs) {
        r.trace.record(now, RequestEventKind::kRedirect, target, /*lane=*/-1,
                       entry.attempt, /*detail=*/old_tier);
        ++r.redirects;
        r.tier = target;
      }
    }
    Lane& lane = lanes_[static_cast<std::size_t>(li)];
    round_robin_[static_cast<std::size_t>(target)] =
        (lane.replica + 1) % pool_.replicas_per_tier();
    Batch b = std::move(entry.batch);
    const int attempt = entry.attempt;
    pending_.erase(pending_.begin() + static_cast<std::ptrdiff_t>(i));
    execute(lane, std::move(b), attempt, now);
    // No ++i: the erase shifted the next entry into slot i.
  }
}

bool ExecutorGroup::idle() const {
  if (!pending_.empty()) return false;
  for (const Lane& lane : lanes_) {
    if (lane.busy) return false;
  }
  return true;
}

std::size_t ExecutorGroup::backlog_requests() const {
  std::size_t n = 0;
  for (const PendingBatch& p : pending_) n += p.batch.requests.size();
  return n;
}

double ExecutorGroup::capacity_fraction() const {
  return static_cast<double>(health_.schedulable_count()) /
         static_cast<double>(health_.num_lanes());
}

}  // namespace qnn::serve
