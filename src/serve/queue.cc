#include "serve/queue.h"

#include "obs/metrics.h"

namespace qnn::serve {
namespace {

// Process-wide admission counters; integer sums, so totals are exact
// and thread-count-independent (obs contract, DESIGN.md §11).
struct QueueMetrics {
  obs::Counter admitted, rejected_full, rejected_expired,
      rejected_shutdown;
  obs::Gauge depth;
};

QueueMetrics& queue_metrics() {
  obs::Registry& r = obs::Registry::global();
  static QueueMetrics m{r.counter("serve.queue.admitted"),
                        r.counter("serve.queue.rejected_full"),
                        r.counter("serve.queue.rejected_expired"),
                        r.counter("serve.queue.rejected_shutdown"),
                        r.gauge("serve.queue.depth")};
  return m;
}

}  // namespace

BoundedQueue::BoundedQueue(std::size_t capacity) : capacity_(capacity) {}

RejectReason BoundedQueue::try_push(Request r, Tick now,
                                    std::size_t extra_backlog) {
  QueueMetrics& m = queue_metrics();
  std::lock_guard<std::mutex> lock(m_);
  const auto reject = [&r, now](RejectReason why) {
    r.trace.record(now, RequestEventKind::kReject, r.tier, /*lane=*/-1,
                   /*attempt=*/0, /*detail=*/static_cast<std::int64_t>(why));
    return why;
  };
  if (closed_) {
    m.rejected_shutdown.inc();
    return reject(RejectReason::kShutdown);
  }
  if (r.deadline <= now) {
    m.rejected_expired.inc();
    return reject(RejectReason::kDeadlineExpired);
  }
  if (q_.size() + extra_backlog >= capacity_) {
    m.rejected_full.inc();
    return reject(RejectReason::kQueueFull);
  }
  r.trace.record(now, RequestEventKind::kAdmit, r.tier);
  q_.push_back(std::move(r));
  m.admitted.inc();
  m.depth.set(static_cast<std::int64_t>(q_.size()));
  return RejectReason::kNone;
}

std::size_t BoundedQueue::drain(std::vector<Request>* out) {
  std::lock_guard<std::mutex> lock(m_);
  const std::size_t n = q_.size();
  for (Request& r : q_) out->push_back(std::move(r));
  q_.clear();
  queue_metrics().depth.set(0);
  return n;
}

void BoundedQueue::close() {
  std::lock_guard<std::mutex> lock(m_);
  closed_ = true;
}

bool BoundedQueue::closed() const {
  std::lock_guard<std::mutex> lock(m_);
  return closed_;
}

std::size_t BoundedQueue::size() const {
  std::lock_guard<std::mutex> lock(m_);
  return q_.size();
}

}  // namespace qnn::serve
