// Precision tiers and the replica pool behind the serving layer
// (DESIGN.md §12).
//
// A tier is one precision point of the degradation lattice, ordered
// from most expensive/most accurate (tier 0) to cheapest (last):
// typically float -> fixed 16 -> fixed 8. Each tier carries a
// deterministic service-cost model (virtual ticks per image, derived
// from the accelerator schedule scaled by operand precision — the
// bit-serial latency model of DynamicStripes-class designs) and the hw
// model's per-image energy, so degrading a request to a lower tier buys
// a KNOWN amount of latency and energy headroom for a KNOWN accuracy
// cost — the paper's precision/accuracy/energy trade-off restated as a
// load-shedding policy.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "nn/network.h"
#include "quant/qconfig.h"
#include "quant/qnetwork.h"
#include "serve/request.h"

namespace qnn::serve {

struct TierSpec {
  std::string name;  // "float", "fixed16", ...
  quant::PrecisionConfig precision;
  // Modeled service time: a batch of B images costs
  //   batch_overhead_ticks + B * ticks_per_image.
  Tick ticks_per_image = 1;
  Tick batch_overhead_ticks = 0;
  double energy_per_image_uj = 0.0;  // hw model, per served image
  // Attribution basis (DESIGN.md §14): one image is `macs_per_image`
  // ops priced at `energy_per_op_pj` apiece at this tier's precision,
  // so macs_per_image * energy_per_op_pj == energy_per_image_uj * 1e6
  // by construction (derive_tier_costs).
  std::int64_t macs_per_image = 0;
  double energy_per_op_pj = 0.0;
};

// The default degradation lattice: float (32,32) -> fixed (16,16) ->
// fixed (8,8), in that order.
std::vector<TierSpec> default_tier_lattice();

// Fills each tier's cost model from the hardware schedule of `net` on
// the default 16x16 accelerator at the tier's precision: energy is the
// schedule's per-image energy, and ticks scale the schedule's cycles by
// effective operand bits / 32 (bit-serial style), so lower-precision
// tiers are proportionally faster. batch_overhead_ticks models per-
// batch weight streaming into Sb at 1/8 of one image's ticks.
void derive_tier_costs(const nn::Network& net, const Shape& sample_input,
                       std::vector<TierSpec>* tiers);

// Per-tier model replicas. Tier replicas are built once from a trained
// float master: clone the network, wrap it at the tier's precision,
// calibrate on a shared batch, then freeze_inference() so serving
// forwards skip per-call parameter re-quantization. Additional replicas
// per tier (for future lane parallelism) are clone_onto copies of the
// tier's calibrated prototype, exactly as the fault campaigns replicate
// networks.
class ReplicaPool {
 public:
  ReplicaPool(const nn::Network& master, const Tensor& calibration_batch,
              std::vector<TierSpec> tiers, int replicas_per_tier = 1);

  ReplicaPool(const ReplicaPool&) = delete;
  ReplicaPool& operator=(const ReplicaPool&) = delete;

  int num_tiers() const { return static_cast<int>(tiers_.size()); }
  int replicas_per_tier() const { return replicas_per_tier_; }
  const TierSpec& tier(int t) const;
  const std::vector<TierSpec>& tiers() const { return tiers_; }

  // Runs `batch` through replica `replica` of tier `t`. Replicas are
  // frozen for inference; the forward itself parallelizes internally
  // via the deterministic thread pool.
  Tensor forward(int t, int replica, const Tensor& batch);

  quant::QuantizedNetwork& replica(int t, int r);

  // Flat lane index used by the executor/health layer (DESIGN.md §13).
  int num_lanes() const { return num_tiers() * replicas_per_tier_; }
  int lane_index(int t, int r) const { return t * replicas_per_tier_ + r; }

  // CRC over the frozen quantized parameter bytes of one replica — the
  // scrub-audit fingerprint. Every replica of a tier freezes to
  // identical bytes (same masters, same calibration), pinned at build
  // time as the tier's golden CRC; a mismatch later means the replica's
  // weight memory was corrupted in place.
  std::uint32_t param_crc(int t, int r);
  std::uint32_t golden_param_crc(int t) const;

  // Repairs a replica from its (ECC-protected) masters: re-reads every
  // layer's parameters through QuantizedNetwork::rescrub_layer_params
  // (restore from master, re-quantize, re-fire injection hooks — a
  // fresh weight-memory load), then re-audits. Returns true when the
  // post-scrub CRC matches the tier's golden image.
  bool rescrub_replica(int t, int r);

 private:
  std::vector<TierSpec> tiers_;
  int replicas_per_tier_;
  // Indexed t * replicas_per_tier_ + r; unique_ptr for stable addresses
  // (QuantizedNetwork holds a reference to its Network).
  std::vector<std::unique_ptr<nn::Network>> nets_;
  std::vector<std::unique_ptr<quant::QuantizedNetwork>> replicas_;
  std::vector<std::uint32_t> golden_crcs_;  // one per tier
};

}  // namespace qnn::serve
