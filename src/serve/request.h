// Core request/response vocabulary of the inference serving layer
// (DESIGN.md §12).
//
// The serving layer runs in VIRTUAL TIME: every request carries an
// arrival tick and a deadline tick from a recorded trace, service
// durations come from a deterministic per-tier cost model, and the
// scheduler advances a virtual clock event by event. Wall-clock never
// enters any scheduling decision, which is what makes overload behavior
// itself replayable: the same trace produces the same batch
// composition, tier assignments, and output bytes at any worker-thread
// count (tests/serve_determinism_test.cc).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "tensor/tensor.h"

namespace qnn::serve {

// Virtual-time instant/duration. The unit is abstract ("ticks"); the
// tier cost model and traces just have to agree on it. bench/
// serve_loadgen uses accelerator cycles.
using Tick = std::int64_t;

// Why a request was turned away at the admission boundary (or dropped
// before execution). Typed so producers can distinguish back-pressure
// (kQueueFull — retry later, maybe elsewhere) from a hopeless request
// (kDeadlineExpired) and a terminal condition (kShutdown).
enum class RejectReason {
  kNone = 0,
  kQueueFull,         // bounded queue at capacity (admission control)
  kDeadlineExpired,   // deadline already passed at enqueue time
  kShutdown,          // server draining; no new work accepted
};

inline const char* reject_reason_name(RejectReason r) {
  switch (r) {
    case RejectReason::kNone:            return "none";
    case RejectReason::kQueueFull:       return "queue_full";
    case RejectReason::kDeadlineExpired: return "deadline_expired";
    case RejectReason::kShutdown:        return "shutdown";
  }
  return "?";
}

// Lifecycle edges of one request's causal event log (DESIGN.md §14).
// Every edge a request crosses on its way through
// queue -> batcher -> executor lanes -> completion is recorded with the
// virtual tick it happened at, so "where did this request spend its
// time and which tier actually ran it" is answerable after the fact.
enum class RequestEventKind {
  kArrival = 0,  // the event loop observed the trace arrival
  kTierAssign,   // admission assigned the entry precision tier
  kAdmit,        // bounded queue accepted the request
  kReject,       // queue turned it away (detail = RejectReason)
  kBatchClose,   // its batch closed (detail = batch size)
  kExpire,       // dropped pre-dispatch (detail: 0 = batcher, 1 = executor)
  kDispatch,     // batch started executing on a lane
  kHang,         // watchdog condemned its in-flight execution
  kCorrupt,      // completion audit discarded its tainted result
  kCrash,        // its lane crashed mid-execution
  kRetry,        // batch requeued (detail = earliest re-dispatch tick)
  kRedirect,     // moved across the precision lattice (detail = old tier)
  kRescrub,      // lane repair ran (lane-scoped; detail = 1 on success)
  kHealth,       // lane health transition (lane-scoped;
                 //   detail = HealthReason, detail2 = new LaneState)
  kComplete,     // response published
  kFail,         // terminal failure (retry budget / lane supply exhausted)
};

const char* request_event_name(RequestEventKind k);

class RequestTracer;

// Request-scoped causal trace handle, minted at admission and carried
// by the Request through every pipeline stage. A null tracer (tracing
// off) makes record() a no-op, so the handle costs one pointer when
// disabled and the pipeline code records unconditionally.
struct TraceContext {
  std::int64_t request_id = -1;
  RequestTracer* tracer = nullptr;

  // Appends one event to the run's causal log (request_trace.cc).
  void record(Tick tick, RequestEventKind kind, int tier = -1, int lane = -1,
              int attempt = 0, std::int64_t detail = -1) const;
};

// One inference request as it moves through queue -> batcher -> replica.
struct Request {
  std::int64_t id = 0;
  Tick arrival = 0;      // when the producer submitted it
  Tick deadline = 0;     // absolute tick; must complete strictly before
  int tier = 0;          // current precision tier (redirects update it)
  int admitted_tier = 0; // tier assigned at admission, before redirects
  int redirects = 0;     // cross-tier hops so far
  TraceContext trace;    // causal event log handle; inert when tracing off
  Tensor payload;        // one sample, shape (1, C, H, W)
};

// Completed request. `output` is the model's logits row for this
// request — the bytes the determinism contract pins. The attribution
// fields (tiers, stage breakdown, energy) ride along but are NOT part
// of ServeResult::digest(), which is why tracing/attribution cannot
// perturb the replay-identity contract.
struct Response {
  std::int64_t id = 0;
  int tier = 0;           // tier that actually served it (after redirects)
  int admitted_tier = 0;  // tier assigned at admission
  int replica = 0;        // lane within the tier that published the result
  int attempt = 1;        // dispatch attempt that published (1 = first try)
  int redirects = 0;      // cross-tier hops taken
  Tick arrival = 0;
  Tick batch_close = 0;  // when its batch closed (queue+batch wait ends)
  Tick dispatch = 0;     // when its publishing execution started
  Tick completion = 0;   // dispatch + modeled batch service time
  bool within_deadline = false;
  int predicted = 0;     // argmax of `output`
  // Attributed cost (obs::AttributionLedger): ops and energy charged to
  // this request across EVERY execution it rode, including discarded
  // ones; `wasted_energy_pj` is the never-published share.
  std::int64_t ops = 0;
  double energy_pj = 0.0;
  double wasted_energy_pj = 0.0;
  std::vector<float> output;

  Tick latency() const { return completion - arrival; }
  // Stage breakdown: queue+batch wait, retry/pending wait, execution.
  Tick queue_wait() const { return batch_close - arrival; }
  Tick dispatch_wait() const { return dispatch - batch_close; }
  Tick execute_ticks() const { return completion - dispatch; }
};

// One executed batch, recorded for replay verification and reports.
struct BatchRecord {
  int tier = 0;
  int replica = 0;  // lane within the tier that published the result
  int attempt = 1;  // dispatch attempt that succeeded (1 = first try)
  Tick dispatch = 0;
  Tick completion = 0;
  std::vector<std::int64_t> request_ids;  // in batch-row order
};

}  // namespace qnn::serve
