// Core request/response vocabulary of the inference serving layer
// (DESIGN.md §12).
//
// The serving layer runs in VIRTUAL TIME: every request carries an
// arrival tick and a deadline tick from a recorded trace, service
// durations come from a deterministic per-tier cost model, and the
// scheduler advances a virtual clock event by event. Wall-clock never
// enters any scheduling decision, which is what makes overload behavior
// itself replayable: the same trace produces the same batch
// composition, tier assignments, and output bytes at any worker-thread
// count (tests/serve_determinism_test.cc).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "tensor/tensor.h"

namespace qnn::serve {

// Virtual-time instant/duration. The unit is abstract ("ticks"); the
// tier cost model and traces just have to agree on it. bench/
// serve_loadgen uses accelerator cycles.
using Tick = std::int64_t;

// Why a request was turned away at the admission boundary (or dropped
// before execution). Typed so producers can distinguish back-pressure
// (kQueueFull — retry later, maybe elsewhere) from a hopeless request
// (kDeadlineExpired) and a terminal condition (kShutdown).
enum class RejectReason {
  kNone = 0,
  kQueueFull,         // bounded queue at capacity (admission control)
  kDeadlineExpired,   // deadline already passed at enqueue time
  kShutdown,          // server draining; no new work accepted
};

inline const char* reject_reason_name(RejectReason r) {
  switch (r) {
    case RejectReason::kNone:            return "none";
    case RejectReason::kQueueFull:       return "queue_full";
    case RejectReason::kDeadlineExpired: return "deadline_expired";
    case RejectReason::kShutdown:        return "shutdown";
  }
  return "?";
}

// One inference request as it moves through queue -> batcher -> replica.
struct Request {
  std::int64_t id = 0;
  Tick arrival = 0;      // when the producer submitted it
  Tick deadline = 0;     // absolute tick; must complete strictly before
  int tier = 0;          // precision tier assigned at admission
  Tensor payload;        // one sample, shape (1, C, H, W)
};

// Completed request. `output` is the model's logits row for this
// request — the bytes the determinism contract pins.
struct Response {
  std::int64_t id = 0;
  int tier = 0;
  Tick arrival = 0;
  Tick dispatch = 0;     // when its batch started executing
  Tick completion = 0;   // dispatch + modeled batch service time
  bool within_deadline = false;
  int predicted = 0;     // argmax of `output`
  std::vector<float> output;

  Tick latency() const { return completion - arrival; }
};

// One executed batch, recorded for replay verification and reports.
struct BatchRecord {
  int tier = 0;
  int replica = 0;  // lane within the tier that published the result
  int attempt = 1;  // dispatch attempt that succeeded (1 = first try)
  Tick dispatch = 0;
  Tick completion = 0;
  std::vector<std::int64_t> request_ids;  // in batch-row order
};

}  // namespace qnn::serve
