#include "serve/controller.h"

#include "obs/metrics.h"
#include "util/check.h"

namespace qnn::serve {
namespace {

struct ControllerMetrics {
  obs::Counter downshifts, upshifts;
  obs::Gauge tier;
};

ControllerMetrics& controller_metrics() {
  obs::Registry& r = obs::Registry::global();
  static ControllerMetrics m{r.counter("serve.controller.downshifts"),
                             r.counter("serve.controller.upshifts"),
                             r.gauge("serve.controller.tier")};
  return m;
}

}  // namespace

OverloadController::OverloadController(const ControllerConfig& config,
                                       int num_tiers)
    : config_(config), num_tiers_(num_tiers) {
  QNN_CHECK_MSG(num_tiers >= 1, "controller needs at least one tier");
  QNN_CHECK_MSG(config.low_depth_fraction <= config.high_depth_fraction,
                "recover threshold above downshift threshold");
  QNN_CHECK_MSG(config.p99_low_ticks <= config.p99_high_ticks,
                "p99 recover threshold above downshift threshold");
}

void OverloadController::update(Tick now, std::size_t depth,
                                std::size_t bound, double p99_ticks) {
  if (ever_shifted_ && now - last_shift_ < config_.dwell_ticks) return;

  const double frac =
      bound > 0 ? static_cast<double>(depth) / static_cast<double>(bound)
                : (depth > 0 ? 1.0 : 0.0);
  const bool latency_signal = config_.p99_high_ticks > 0 && p99_ticks > 0;
  const bool hot =
      frac >= config_.high_depth_fraction ||
      (latency_signal &&
       p99_ticks >= static_cast<double>(config_.p99_high_ticks));
  const bool cool =
      frac <= config_.low_depth_fraction &&
      (!latency_signal ||
       p99_ticks <= static_cast<double>(config_.p99_low_ticks));

  ControllerMetrics& m = controller_metrics();
  if (hot && tier_ + 1 < num_tiers_) {
    ++tier_;
    ++downshifts_;
    ever_shifted_ = true;
    last_shift_ = now;
    m.downshifts.inc();
    m.tier.set(tier_);
  } else if (cool && tier_ > 0) {
    --tier_;
    ++upshifts_;
    ever_shifted_ = true;
    last_shift_ = now;
    m.upshifts.inc();
    m.tier.set(tier_);
  }
}

}  // namespace qnn::serve
