#include "serve/trace.h"

#include <cmath>
#include <utility>

#include "faults/injector.h"
#include "tensor/tensor.h"
#include "util/check.h"
#include "util/fileio.h"
#include "util/json.h"
#include "util/rng.h"

namespace qnn::serve {
namespace {

constexpr std::int64_t kTraceVersion = 1;

}  // namespace

Shape ArrivalTrace::sample_shape() const {
  std::vector<std::int64_t> dims;
  dims.reserve(sample_dims.size() + 1);
  dims.push_back(1);
  for (std::int64_t d : sample_dims) dims.push_back(d);
  return Shape(dims);
}

ArrivalTrace make_open_loop_trace(const OpenLoopSpec& spec,
                                  std::vector<std::int64_t> sample_dims) {
  QNN_CHECK_MSG(spec.num_requests >= 0, "negative num_requests");
  QNN_CHECK_MSG(spec.mean_interarrival_ticks >= 0.0,
                "negative mean inter-arrival time");
  ArrivalTrace trace;
  trace.sample_dims = std::move(sample_dims);
  trace.requests.reserve(static_cast<std::size_t>(spec.num_requests));
  Rng gaps(faults::derive_seed(spec.seed, /*salt=*/0x6172726976ull));
  Tick arrival = 0;
  for (std::int64_t i = 0; i < spec.num_requests; ++i) {
    if (i > 0) {
      double gap = spec.mean_interarrival_ticks;
      if (spec.poisson) {
        // Inverse-CDF exponential draw; uniform() is in [0, 1) so the
        // log argument stays strictly positive.
        gap = -spec.mean_interarrival_ticks * std::log(1.0 - gaps.uniform());
      }
      arrival += static_cast<Tick>(std::llround(gap));
    }
    TraceRequest r;
    r.id = i;
    r.arrival = arrival;
    r.deadline = arrival + spec.relative_deadline_ticks;
    r.payload_seed =
        faults::derive_seed2(spec.seed, /*a=*/0x7061796cull,
                             /*b=*/static_cast<std::uint64_t>(i));
    trace.requests.push_back(r);
  }
  return trace;
}

Tensor default_payload(const TraceRequest& r, const Shape& sample_shape) {
  Tensor t(sample_shape);
  Rng rng(r.payload_seed);
  t.fill_uniform(rng, 0.0f, 1.0f);
  return t;
}

void save_trace(const std::string& path, const ArrivalTrace& trace) {
  json::Value doc = json::Value::object();
  doc.set("version", json::Value(kTraceVersion));
  json::Value dims = json::Value::array();
  for (std::int64_t d : trace.sample_dims) dims.push_back(json::Value(d));
  doc.set("sample_dims", std::move(dims));
  json::Value reqs = json::Value::array();
  for (const TraceRequest& r : trace.requests) {
    json::Value jr = json::Value::object();
    jr.set("id", json::Value(r.id));
    jr.set("arrival", json::Value(r.arrival));
    jr.set("deadline", json::Value(r.deadline));
    // Seeds span the full uint64 range; store the two's-complement
    // bit pattern (json ints are int64) and undo it on load.
    jr.set("payload_seed",
           json::Value(static_cast<std::int64_t>(r.payload_seed)));
    reqs.push_back(std::move(jr));
  }
  doc.set("requests", std::move(reqs));
  write_file_atomic(path, doc.dump());
}

ArrivalTrace load_trace(const std::string& path) {
  // Every failure below throws CheckError carrying `path` (and, for
  // syntax errors, the line where json::parse gave up), so a truncated
  // copy or an unrelated file dropped at the trace path is diagnosable
  // from the message alone.
  const std::string text = read_file(path);
  QNN_CHECK_MSG(!text.empty(), "trace file " << path << " is empty");
  const json::Value doc = json::parse(text, path);
  QNN_CHECK_MSG(doc.kind() == json::Value::Kind::kObject,
                "trace file " << path << " is not a JSON object");
  for (const char* key : {"version", "sample_dims", "requests"}) {
    QNN_CHECK_MSG(doc.contains(key),
                  "trace file " << path << " is missing \"" << key << "\"");
  }
  QNN_CHECK_MSG(doc.at("version").kind() == json::Value::Kind::kInt &&
                    doc.at("version").as_int() == kTraceVersion,
                "unsupported trace version in " << path << " (want "
                                                << kTraceVersion << ")");
  ArrivalTrace trace;
  QNN_CHECK_MSG(doc.at("sample_dims").kind() == json::Value::Kind::kArray,
                "\"sample_dims\" is not an array in " << path);
  for (const json::Value& d : doc.at("sample_dims").items()) {
    QNN_CHECK_MSG(d.kind() == json::Value::Kind::kInt && d.as_int() > 0,
                  "non-positive sample dim in " << path);
    trace.sample_dims.push_back(d.as_int());
  }
  QNN_CHECK_MSG(!trace.sample_dims.empty(),
                "trace file " << path << " has an empty sample shape");
  QNN_CHECK_MSG(doc.at("requests").kind() == json::Value::Kind::kArray,
                "\"requests\" is not an array in " << path);
  Tick prev_arrival = 0;
  std::size_t index = 0;
  for (const json::Value& jr : doc.at("requests").items()) {
    QNN_CHECK_MSG(jr.kind() == json::Value::Kind::kObject,
                  "request " << index << " in " << path
                             << " is not a JSON object");
    for (const char* key : {"id", "arrival", "deadline", "payload_seed"}) {
      QNN_CHECK_MSG(jr.contains(key) &&
                        jr.at(key).kind() == json::Value::Kind::kInt,
                    "request " << index << " in " << path
                               << " is missing integer \"" << key << "\"");
    }
    TraceRequest r;
    r.id = jr.at("id").as_int();
    r.arrival = jr.at("arrival").as_int();
    r.deadline = jr.at("deadline").as_int();
    r.payload_seed = static_cast<std::uint64_t>(jr.at("payload_seed").as_int());
    QNN_CHECK_MSG(r.id >= 0,
                  "negative id on request " << index << " in " << path);
    QNN_CHECK_MSG(r.arrival >= 0,
                  "negative arrival tick on request " << index << " in "
                                                      << path);
    QNN_CHECK_MSG(r.deadline >= r.arrival,
                  "deadline before arrival on request " << index << " in "
                                                        << path);
    QNN_CHECK_MSG(r.arrival >= prev_arrival,
                  "trace arrivals not sorted at request " << index << " in "
                                                          << path);
    prev_arrival = r.arrival;
    trace.requests.push_back(r);
    ++index;
  }
  return trace;
}

}  // namespace qnn::serve
