// Per-replica executor lanes with a virtual-time watchdog and
// retry-with-redirect (DESIGN.md §13).
//
// The serving front end (queue -> batcher) closes precision-pure
// batches; this layer runs them. Every (tier, replica) pair of the
// ReplicaPool is one executor LANE with its own virtual-time occupancy,
// so tiers no longer share a single implicit executor: a float batch
// executing does not serialize behind a fixed8 batch. Lanes fail — the
// chaos schedule (faults/lane_faults.h) can wedge one (hang), rot its
// weight memory (corrupt), or kill it outright (crash) — and the group
// keeps the batcher's contract anyway:
//
//   * watchdog: a batch whose virtual runtime exceeds
//     `watchdog_budget_factor x` its modeled service time is declared
//     hung at the budget tick; the wedged lane's eventual result is
//     discarded (never published) and the batch re-dispatches.
//   * audit: at each completion the lane's output is scanned for
//     NaN/Inf and its frozen parameter bytes are CRC-audited against
//     the tier's golden image (ReplicaPool::param_crc); a mismatch
//     quarantines the lane for rescrub from masters and the tainted
//     result is discarded.
//   * retry-with-redirect: a failed batch re-dispatches with bounded
//     attempts and exponential backoff — to a sibling replica in its
//     tier while the tier has schedulable lanes, then DOWN the
//     precision lattice (tier+1, ...) when the whole tier is out,
//     falling back up toward tier 0 only when nothing cheaper is left.
//     The degradation ladder of Moons et al.: a dead fixed16 lane
//     redirects to fixed8, it does not drop work.
//   * fail-stop (redirect_on_failure = false): the comparison baseline.
//     Any fault retires the lane and fails its batch; no retries, no
//     rescrubs, no redirects.
//
// Everything advances on the caller's virtual clock in a fixed order
// (faults, watchdogs, completions, rescrubs, dispatches), so a chaos
// replay is bit-identical at any worker-thread count. Conservation
// invariant: every submitted request leaves exactly once — published,
// expired, or failed — and no batch is ever published twice.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "faults/lane_faults.h"
#include "obs/ledger.h"
#include "serve/batcher.h"
#include "serve/health.h"
#include "serve/request.h"
#include "serve/request_trace.h"
#include "serve/tiers.h"

namespace qnn::serve {

struct ExecutorConfig {
  // A batch is hung when its virtual runtime exceeds this multiple of
  // its modeled service time. Must be >= 1.
  double watchdog_budget_factor = 4.0;
  // Backoff before a re-dispatch: attempt 2 waits `retry_backoff_ticks`,
  // attempt 3 twice that, and so on. 0 retries immediately.
  Tick retry_backoff_ticks = 0;
  // Total dispatch attempts per batch (first try included).
  int max_attempts = 3;
  // false = fail-stop baseline: faults retire lanes and fail batches.
  bool redirect_on_failure = true;
};

// One published execution, ready for the server to turn into responses.
struct ExecutedBatch {
  Batch batch;
  Tensor output;  // (batch, classes) logits
  int replica = 0;
  int attempt = 1;
  Tick dispatch = 0;
  Tick completion = 0;
};

struct ExecutorStats {
  std::int64_t executions = 0;        // forwards run (incl. discarded)
  std::int64_t discarded = 0;         // results never published
  std::int64_t hung_batches = 0;      // watchdog firings
  std::int64_t corrupt_batches = 0;   // audit failures at completion
  std::int64_t crashed_batches = 0;   // in-flight batches lost to crash
  std::int64_t retries = 0;           // re-dispatch attempts queued
  std::int64_t redirected_requests = 0;  // requests moved across tiers
  std::int64_t failed_requests = 0;      // retry budget/lanes exhausted
  double energy_uj = 0.0;             // all executions, incl. discarded
};

class ExecutorGroup {
 public:
  // `chaos` may be null (no injected faults) and must outlive the group.
  // `tracer` (request lifecycle events + lane executions) and `ledger`
  // (per-request energy attribution, DESIGN.md §14) may be null; when
  // set they must outlive the group. Neither feeds back into
  // scheduling, so replay digests are identical with or without them.
  ExecutorGroup(ReplicaPool& pool, const ExecutorConfig& config,
                const HealthConfig& health,
                const faults::LaneFaultSchedule* chaos,
                RequestTracer* tracer = nullptr,
                obs::AttributionLedger* ledger = nullptr);

  ExecutorGroup(const ExecutorGroup&) = delete;
  ExecutorGroup& operator=(const ExecutorGroup&) = delete;

  // Earliest future tick at which this group has work to do —
  // completion, watchdog budget expiry, chaos fault, rescrub coming
  // due, or a backoff expiring — or kNoTick when fully idle. Drives
  // the server's event loop.
  static constexpr Tick kNoTick = -1;
  Tick next_event_tick() const;

  // Accepts a closed batch from the batcher for dispatch.
  void submit(Batch b);

  // Advances internal state to `now` in deterministic order: applies
  // chaos faults due, fires watchdogs, retires completions (publishing
  // into `done`), performs due rescrubs. Requests that terminally leave
  // the group are appended to `expired` (deadline passed before a
  // dispatch) or `failed` (retry budget or lane supply exhausted).
  void advance(Tick now, std::vector<ExecutedBatch>* done,
               std::vector<Request>* expired, std::vector<Request>* failed);

  // Starts every batch that can start at `now`: pending work (retries
  // first) onto free schedulable lanes, redirecting across the lattice
  // when a batch's tier has none. Call after advance() and submit()s.
  void dispatch(Tick now, std::vector<Request>* expired,
                std::vector<Request>* failed);

  // True when nothing is pending or in flight.
  bool idle() const;

  // Requests accepted but not yet dispatched (admission backlog).
  std::size_t backlog_requests() const;

  // Schedulable lanes / total lanes — the capacity-loss signal fed to
  // admission control as lanes die.
  double capacity_fraction() const;

  const HealthLattice& health() const { return health_; }
  const ExecutorStats& stats() const { return stats_; }

 private:
  struct Lane {
    int tier = 0;
    int replica = 0;
    // In-flight batch; busy when completion > kNoTick.
    bool busy = false;
    Batch batch;
    Tensor output;
    int attempt = 1;
    Tick dispatch_tick = 0;
    Tick completion = 0;
    Tick watchdog_due = kNoTick;  // kNoTick: completes within budget
    bool doomed = false;          // result will be discarded
    // Armed hang fault: inflates the next dispatch's service time.
    Tick hang_ticks = 0;
    // Tracer handle for the in-flight execution (kNoExecution when
    // tracing is off or the lane is idle).
    std::size_t exec_record = RequestTracer::kNoExecution;
  };

  struct PendingBatch {
    Batch batch;
    int attempt = 1;
    Tick not_before = 0;
  };

  void apply_due_faults(Tick now, std::vector<Request>* failed);
  void fire_watchdogs(Tick now, std::vector<Request>* failed);
  void retire_completions(Tick now, std::vector<ExecutedBatch>* done,
                          std::vector<Request>* failed);
  void perform_due_rescrubs(Tick now);
  // Requeues a failed batch (bounded, with backoff) or fails its
  // requests when retries/lanes are exhausted.
  void requeue_or_fail(Batch b, int attempt, Tick now,
                       std::vector<Request>* failed);
  void fail_batch(Batch b, std::vector<Request>* failed);
  // Tier resolution for dispatch; kTierWait = no schedulable lane
  // anywhere but a quarantined lane will return, kTierNever = give up.
  static constexpr int kTierWait = -1;
  static constexpr int kTierNever = -2;
  int resolve_tier(int preferred) const;
  bool tier_schedulable(int t) const;
  int pick_lane(int t) const;  // free schedulable lane or -1
  void execute(Lane& lane, Batch b, int attempt, Tick now);

  ReplicaPool& pool_;
  ExecutorConfig config_;
  HealthLattice health_;
  const faults::LaneFaultSchedule* chaos_;
  RequestTracer* tracer_;            // may be null
  obs::AttributionLedger* ledger_;   // may be null
  std::size_t next_fault_ = 0;  // first unapplied chaos entry
  std::vector<Lane> lanes_;     // flat, tier-major (pool lane order)
  std::deque<PendingBatch> pending_;
  std::vector<int> round_robin_;  // per-tier lane cursor
  Tick vnow_ = 0;                 // last advance/dispatch tick
  ExecutorStats stats_;
};

}  // namespace qnn::serve
