#include "serve/slo.h"

#include <algorithm>
#include <cmath>

namespace qnn::serve {
namespace {

// Exact nearest-rank quantile: smallest sample with rank >= ceil(q*n).
// -1.0 sentinel when there are no samples (obs::kQuantileNoSamples).
double nearest_rank(std::vector<double> samples, double q) {
  if (samples.empty()) return -1.0;
  std::sort(samples.begin(), samples.end());
  const std::size_t n = samples.size();
  std::size_t rank = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(n)));
  if (rank < 1) rank = 1;
  if (rank > n) rank = n;
  return samples[rank - 1];
}

}  // namespace

SloSummary make_slo_summary(const ServeResult& result,
                            const std::vector<TierSpec>& tiers) {
  SloSummary slo;
  const ServeStats& s = result.stats;
  slo.served = s.served;
  slo.admitted = s.admitted;
  slo.expired_in_queue = s.expired_in_queue;
  slo.failed = s.failed;
  slo.within_deadline = s.served_within_deadline;
  slo.total_energy_pj = result.ledger.total_energy_pj();
  slo.published_energy_pj = result.ledger.published_energy_pj();
  slo.wasted_energy_pj = result.ledger.wasted_energy_pj();
  slo.energy_per_request_pj =
      s.served > 0 ? slo.total_energy_pj / static_cast<double>(s.served) : 0.0;

  // Bucket responses by the tier that actually served them.
  struct TierSamples {
    std::vector<double> queue_wait, execute, latency;
    std::int64_t within = 0;
    double energy_pj = 0.0;
  };
  std::vector<TierSamples> buckets(tiers.size());
  for (const Response& r : result.responses) {
    TierSamples& b = buckets.at(static_cast<std::size_t>(r.tier));
    b.queue_wait.push_back(static_cast<double>(r.queue_wait()));
    b.execute.push_back(static_cast<double>(r.execute_ticks()));
    b.latency.push_back(static_cast<double>(r.latency()));
    if (r.within_deadline) ++b.within;
    b.energy_pj += r.energy_pj;
  }

  std::int64_t tier_served_sum = 0;
  for (std::size_t t = 0; t < buckets.size(); ++t) {
    const TierSamples& b = buckets[t];
    if (b.latency.empty()) continue;
    TierSlo ts;
    ts.tier = static_cast<int>(t);
    ts.name = tiers[t].name;
    ts.served = static_cast<std::int64_t>(b.latency.size());
    ts.within_deadline = b.within;
    ts.in_deadline_fraction =
        static_cast<double>(b.within) / static_cast<double>(ts.served);
    ts.p50_queue_wait_ticks = nearest_rank(b.queue_wait, 0.5);
    ts.p99_queue_wait_ticks = nearest_rank(b.queue_wait, 0.99);
    ts.p50_execute_ticks = nearest_rank(b.execute, 0.5);
    ts.p99_execute_ticks = nearest_rank(b.execute, 0.99);
    ts.p50_latency_ticks = nearest_rank(b.latency, 0.5);
    ts.p99_latency_ticks = nearest_rank(b.latency, 0.99);
    ts.energy_per_request_pj = b.energy_pj / static_cast<double>(ts.served);
    tier_served_sum += ts.served;
    slo.tiers.push_back(std::move(ts));
  }

  slo.conserved =
      tier_served_sum == slo.served &&
      slo.served == static_cast<std::int64_t>(result.responses.size()) &&
      slo.admitted == slo.served + slo.expired_in_queue + slo.failed;
  return slo;
}

json::Value slo_to_json(const SloSummary& slo) {
  json::Value v = json::Value::object();
  json::Value tiers = json::Value::array();
  for (const TierSlo& t : slo.tiers) {
    json::Value tv = json::Value::object();
    tv.set("tier", static_cast<std::int64_t>(t.tier));
    tv.set("name", t.name);
    tv.set("served", t.served);
    tv.set("within_deadline", t.within_deadline);
    tv.set("in_deadline_fraction", t.in_deadline_fraction);
    tv.set("p50_queue_wait_ticks", t.p50_queue_wait_ticks);
    tv.set("p99_queue_wait_ticks", t.p99_queue_wait_ticks);
    tv.set("p50_execute_ticks", t.p50_execute_ticks);
    tv.set("p99_execute_ticks", t.p99_execute_ticks);
    tv.set("p50_latency_ticks", t.p50_latency_ticks);
    tv.set("p99_latency_ticks", t.p99_latency_ticks);
    tv.set("energy_per_request_pj", t.energy_per_request_pj);
    tiers.push_back(std::move(tv));
  }
  v.set("tiers", std::move(tiers));
  v.set("served", slo.served);
  v.set("admitted", slo.admitted);
  v.set("expired_in_queue", slo.expired_in_queue);
  v.set("failed", slo.failed);
  v.set("within_deadline", slo.within_deadline);
  v.set("total_energy_pj", slo.total_energy_pj);
  v.set("published_energy_pj", slo.published_energy_pj);
  v.set("wasted_energy_pj", slo.wasted_energy_pj);
  v.set("energy_per_request_pj", slo.energy_per_request_pj);
  v.set("conserved", slo.conserved);
  return v;
}

}  // namespace qnn::serve
