#include "serve/batcher.h"

#include <algorithm>

#include "obs/metrics.h"
#include "util/check.h"

namespace qnn::serve {
namespace {

struct BatcherMetrics {
  obs::Counter closed_full, closed_window, closed_flush, expired;
};

BatcherMetrics& batcher_metrics() {
  obs::Registry& r = obs::Registry::global();
  static BatcherMetrics m{r.counter("serve.batch.closed_full"),
                          r.counter("serve.batch.closed_window"),
                          r.counter("serve.batch.closed_flush"),
                          r.counter("serve.batch.expired_in_queue")};
  return m;
}

}  // namespace

DynamicBatcher::DynamicBatcher(const BatcherConfig& config, int num_tiers)
    : config_(config),
      pending_(static_cast<std::size_t>(num_tiers)) {
  QNN_CHECK_MSG(config.max_batch >= 1, "max_batch must be positive");
  QNN_CHECK_MSG(config.batch_window >= 0, "batch_window must be >= 0");
  QNN_CHECK_MSG(num_tiers >= 1, "batcher needs at least one tier");
}

void DynamicBatcher::add(Request r, Tick now) {
  const std::size_t tier = static_cast<std::size_t>(r.tier);
  QNN_CHECK_MSG(tier < pending_.size(),
                "request assigned to unknown tier " << r.tier);
  pending_[tier].push_back(Pending{std::move(r), now});
}

void DynamicBatcher::drop_expired(Tick now, std::vector<Request>* expired) {
  for (auto& dq : pending_) {
    for (auto it = dq.begin(); it != dq.end();) {
      if (it->request.deadline <= now) {
        batcher_metrics().expired.inc();
        it->request.trace.record(now, RequestEventKind::kExpire,
                                 it->request.tier, /*lane=*/-1, /*attempt=*/0,
                                 /*detail=*/0);
        expired->push_back(std::move(it->request));
        it = dq.erase(it);
      } else {
        ++it;
      }
    }
  }
}

Batch DynamicBatcher::close_front(int tier, std::size_t count, Tick now) {
  auto& dq = pending_[static_cast<std::size_t>(tier)];
  QNN_DCHECK(count <= dq.size());
  Batch b;
  b.tier = tier;
  b.close_tick = now;
  b.requests.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    b.requests.push_back(std::move(dq.front().request));
    dq.pop_front();
  }
  for (const Request& r : b.requests) {
    r.trace.record(now, RequestEventKind::kBatchClose, tier, /*lane=*/-1,
                   /*attempt=*/0,
                   /*detail=*/static_cast<std::int64_t>(b.requests.size()));
  }
  return b;
}

std::vector<Batch> DynamicBatcher::poll(Tick now,
                                        std::vector<Request>* expired) {
  drop_expired(now, expired);
  std::vector<Batch> out;
  const std::size_t max = static_cast<std::size_t>(config_.max_batch);
  for (int t = 0; t < static_cast<int>(pending_.size()); ++t) {
    auto& dq = pending_[static_cast<std::size_t>(t)];
    while (dq.size() >= max) {
      out.push_back(close_front(t, max, now));
      batcher_metrics().closed_full.inc();
    }
    if (!dq.empty() && now - dq.front().enqueued >= config_.batch_window) {
      out.push_back(close_front(t, dq.size(), now));
      batcher_metrics().closed_window.inc();
    }
  }
  return out;
}

std::vector<Batch> DynamicBatcher::flush(Tick now,
                                         std::vector<Request>* expired) {
  drop_expired(now, expired);
  std::vector<Batch> out;
  const std::size_t max = static_cast<std::size_t>(config_.max_batch);
  for (int t = 0; t < static_cast<int>(pending_.size()); ++t) {
    auto& dq = pending_[static_cast<std::size_t>(t)];
    while (!dq.empty()) {
      out.push_back(close_front(t, std::min(dq.size(), max), now));
      batcher_metrics().closed_flush.inc();
    }
  }
  return out;
}

Tick DynamicBatcher::next_window_tick() const {
  Tick next = kNoTick;
  for (const auto& dq : pending_) {
    if (dq.empty()) continue;
    const Tick due = dq.front().enqueued + config_.batch_window;
    if (next == kNoTick || due < next) next = due;
  }
  return next;
}

std::size_t DynamicBatcher::pending_total() const {
  std::size_t n = 0;
  for (const auto& dq : pending_) n += dq.size();
  return n;
}

}  // namespace qnn::serve
