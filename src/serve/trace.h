// Recorded arrival traces: the replayable input format of the serving
// layer (DESIGN.md §12).
//
// A trace is the COMPLETE external input of a serving run — per request:
// arrival tick, absolute deadline tick, and a payload seed from which
// the request's input tensor is synthesized deterministically. Replaying
// a trace therefore reproduces every scheduling decision bit-for-bit,
// which is what makes overload behavior itself testable: the determinism
// suite replays one trace at 1/4/8 worker threads and compares response
// bytes, tier assignments, and batch composition.
//
// Persistence is a CRC-less single JSON document written atomically
// (write_file_atomic); traces are inputs, not recovery state.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "serve/request.h"
#include "tensor/shape.h"

namespace qnn::serve {

struct TraceRequest {
  std::int64_t id = 0;
  Tick arrival = 0;
  Tick deadline = 0;             // absolute tick
  std::uint64_t payload_seed = 0;
};

struct ArrivalTrace {
  // Payload shape of one sample WITHOUT the batch dimension, e.g.
  // {1, 28, 28} for LeNet inputs; payloads materialize as (1, C, H, W).
  std::vector<std::int64_t> sample_dims;
  std::vector<TraceRequest> requests;  // nondecreasing arrival ticks

  Shape sample_shape() const;  // (1, dims...)
};

// Open-loop trace generator: arrivals do NOT wait for responses (the
// load-shedding scenario). Inter-arrival gaps are exponential with the
// given mean (rounded to ticks, Poisson-style bursts included) or fixed
// when `poisson` is false; everything derives from `seed`.
struct OpenLoopSpec {
  std::int64_t num_requests = 100;
  double mean_interarrival_ticks = 100.0;
  Tick relative_deadline_ticks = 1000;  // deadline = arrival + this
  std::uint64_t seed = 1;
  bool poisson = true;
};

ArrivalTrace make_open_loop_trace(const OpenLoopSpec& spec,
                                  std::vector<std::int64_t> sample_dims);

// Deterministic payload synthesis: uniform [0, 1) values from the
// request's payload seed — the default provider when a server is not
// wired to a dataset.
Tensor default_payload(const TraceRequest& r, const Shape& sample_shape);

// Atomic save / validated load. load_trace throws CheckError on
// malformed files (wrong version, unsorted arrivals, bad shapes).
void save_trace(const std::string& path, const ArrivalTrace& trace);
ArrivalTrace load_trace(const std::string& path);

}  // namespace qnn::serve
