// Overload controller: precision-downshift graceful degradation with
// hysteresis (DESIGN.md §12).
//
// The controller watches two pressure signals — backlog depth as a
// fraction of the admission bound, and the observed p99 latency (read
// from the obs registry's serve latency histogram via the quantile
// helper) — and moves a single pointer through the tier lattice:
// downshift new requests to the next-cheaper precision tier when either
// signal is hot, recover one tier when BOTH are cool. Rejection is the
// last resort, reached only when the queue is full while already at the
// cheapest tier.
//
// Hysteresis: after any shift the controller holds its tier for at
// least `dwell_ticks` of virtual time, and the recover thresholds sit
// well below the downshift thresholds, so a pressure signal oscillating
// around one threshold cannot make tier assignment flap.
//
// Everything is a pure function of (virtual time, integer signals), so
// controller decisions replay bit-identically at any thread count.
#pragma once

#include <cstddef>

#include "serve/request.h"

namespace qnn::serve {

struct ControllerConfig {
  // Backlog fraction (depth / admission bound) thresholds.
  double high_depth_fraction = 0.75;  // downshift at or above
  double low_depth_fraction = 0.25;   // eligible to recover below
  // Observed-p99 thresholds in virtual ticks; 0 disables the latency
  // signal (depth-only control).
  Tick p99_high_ticks = 0;
  Tick p99_low_ticks = 0;
  // Minimum virtual time between consecutive shifts.
  Tick dwell_ticks = 0;
};

class OverloadController {
 public:
  OverloadController(const ControllerConfig& config, int num_tiers);

  // Tier to assign to requests admitted now (0 = full precision).
  int current_tier() const { return tier_; }

  // Feeds one observation of the pressure signals and applies the
  // hysteresis state machine. `depth`/`bound` describe the admission
  // backlog; `p99_ticks` is the observed latency quantile (<= 0 when no
  // completions have been observed yet).
  void update(Tick now, std::size_t depth, std::size_t bound,
              double p99_ticks);

  std::int64_t downshifts() const { return downshifts_; }
  std::int64_t upshifts() const { return upshifts_; }

 private:
  ControllerConfig config_;
  int num_tiers_;
  int tier_ = 0;
  bool ever_shifted_ = false;
  Tick last_shift_ = 0;
  std::int64_t downshifts_ = 0;
  std::int64_t upshifts_ = 0;
};

}  // namespace qnn::serve
