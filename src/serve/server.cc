#include "serve/server.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <utility>

#include "nn/metrics.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/check.h"
#include "util/crc32.h"

namespace qnn::serve {
namespace {

// Latencies are measured in virtual ticks and tiers can be ~1e6 ticks
// per image, so the duration histograms need a deep tail.
constexpr std::int64_t kMaxLatencyBound = std::int64_t{1} << 40;

struct ServeMetrics {
  obs::Histogram latency, wait, batch_size;
};

ServeMetrics& serve_metrics() {
  obs::Registry& r = obs::Registry::global();
  static ServeMetrics m{
      r.histogram("serve.latency_ticks",
                  obs::exponential_bounds(kMaxLatencyBound)),
      r.histogram("serve.wait_ticks",
                  obs::exponential_bounds(kMaxLatencyBound)),
      r.histogram("serve.batch_size", obs::exponential_bounds(1024))};
  return m;
}

// The obs registry is process-global and accumulates across runs, so
// per-run quantiles are computed on the DELTA between the current
// snapshot and the baseline captured at run start. Bucket counts are
// exact integers, so the delta — and therefore the p99 the controller
// feeds back on — is thread-count-independent.
struct HistogramDelta {
  obs::MetricSnapshot base;  // zero-valued when absent at baseline

  double quantile(const obs::Snapshot& current, const std::string& name,
                  double q) const {
    const obs::MetricSnapshot* cur = current.find(name);
    if (cur == nullptr) return 0.0;
    obs::MetricSnapshot delta = *cur;
    if (!base.buckets.empty()) {
      QNN_CHECK_MSG(base.buckets.size() == delta.buckets.size(),
                    "histogram " << name << " changed shape mid-run");
      for (std::size_t i = 0; i < delta.buckets.size(); ++i) {
        delta.buckets[i] -= base.buckets[i];
      }
      delta.count -= base.count;
      delta.sum -= base.sum;
    }
    return delta.quantile(q);
  }
};

HistogramDelta baseline_of(const obs::Snapshot& snap,
                           const std::string& name) {
  HistogramDelta d;
  const obs::MetricSnapshot* m = snap.find(name);
  if (m != nullptr) d.base = *m;
  return d;
}

}  // namespace

const char* admission_policy_name(AdmissionPolicy p) {
  switch (p) {
    case AdmissionPolicy::kDegrade:     return "degrade";
    case AdmissionPolicy::kRejectOnly:  return "reject_only";
    case AdmissionPolicy::kNoAdmission: return "no_admission";
  }
  return "?";
}

std::uint32_t ServeResult::digest() const {
  std::uint32_t crc = 0;
  for (const Response& r : responses) {
    crc = crc32(&r.id, sizeof(r.id), crc);
    crc = crc32(&r.tier, sizeof(r.tier), crc);
    crc = crc32(&r.completion, sizeof(r.completion), crc);
    crc = crc32(r.output.data(), r.output.size() * sizeof(float), crc);
  }
  for (const HealthTransition& t : health_log) {
    const std::int32_t fields[4] = {
        t.lane, static_cast<std::int32_t>(t.from),
        static_cast<std::int32_t>(t.to), static_cast<std::int32_t>(t.reason)};
    crc = crc32(&t.tick, sizeof(t.tick), crc);
    crc = crc32(fields, sizeof(fields), crc);
  }
  return crc;
}

json::Value serve_stats_to_json(const ServeStats& s) {
  json::Value v = json::Value::object();
  v.set("offered", json::Value(s.offered));
  v.set("admitted", json::Value(s.admitted));
  v.set("rejected_full", json::Value(s.rejected_full));
  v.set("rejected_expired", json::Value(s.rejected_expired));
  v.set("rejected_shutdown", json::Value(s.rejected_shutdown));
  v.set("expired_in_queue", json::Value(s.expired_in_queue));
  v.set("served", json::Value(s.served));
  v.set("served_within_deadline", json::Value(s.served_within_deadline));
  v.set("served_late", json::Value(s.served_late));
  v.set("failed", json::Value(s.failed));
  json::Value per_tier = json::Value::array();
  for (std::int64_t n : s.served_per_tier) per_tier.push_back(json::Value(n));
  v.set("served_per_tier", std::move(per_tier));
  v.set("downshifts", json::Value(s.downshifts));
  v.set("upshifts", json::Value(s.upshifts));
  v.set("hung_batches", json::Value(s.hung_batches));
  v.set("corrupt_batches", json::Value(s.corrupt_batches));
  v.set("crashed_batches", json::Value(s.crashed_batches));
  v.set("retries", json::Value(s.retries));
  v.set("redirected", json::Value(s.redirected));
  v.set("rescrubs", json::Value(s.rescrubs));
  v.set("discarded_results", json::Value(s.discarded_results));
  v.set("end_tick", json::Value(s.end_tick));
  v.set("total_energy_uj", json::Value(s.total_energy_uj));
  v.set("p50_latency_ticks", json::Value(s.p50_latency_ticks));
  v.set("p99_latency_ticks", json::Value(s.p99_latency_ticks));
  v.set("attributed_ops", json::Value(s.attributed_ops));
  v.set("attributed_energy_pj", json::Value(s.attributed_energy_pj));
  v.set("wasted_energy_pj", json::Value(s.wasted_energy_pj));
  return v;
}

Server::Server(ReplicaPool& pool, ServerConfig config)
    : pool_(pool), config_(std::move(config)) {
  QNN_CHECK_MSG(pool_.num_tiers() >= 1, "server needs at least one tier");
}

ServeResult Server::run_trace(const ArrivalTrace& trace) {
  QNN_SPAN("serve.run_trace", "serve");
  ServeMetrics& metrics = serve_metrics();
  HistogramDelta lat_delta =
      baseline_of(obs::Registry::global().snapshot(), "serve.latency_ticks");
  Tick window_start = 0;

  const Shape sample = trace.sample_shape();
  const std::int64_t per_row = sample.count();
  const PayloadProvider provider =
      config_.payload ? config_.payload : PayloadProvider(&default_payload);

  const bool bounded = config_.policy != AdmissionPolicy::kNoAdmission;
  const std::size_t capacity =
      bounded ? config_.queue_capacity
              : std::numeric_limits<std::size_t>::max();
  const bool degrade = config_.policy == AdmissionPolicy::kDegrade;

  // Pool hygiene: a previous chaos run may have left corrupted replica
  // params behind. Repairing mismatched lanes up front makes run_trace
  // idempotent — replays on a shared pool start from the golden image.
  for (int t = 0; t < pool_.num_tiers(); ++t) {
    for (int r = 0; r < pool_.replicas_per_tier(); ++r) {
      if (pool_.param_crc(t, r) != pool_.golden_param_crc(t)) {
        QNN_CHECK_MSG(pool_.rescrub_replica(t, r),
                      "pre-run rescrub failed for tier " << t << " replica "
                                                         << r);
      }
    }
  }

  BoundedQueue queue(capacity);
  DynamicBatcher batcher(config_.batcher, pool_.num_tiers());
  OverloadController controller(config_.controller, pool_.num_tiers());
  // The ledger always runs (it fills Response attribution fields); the
  // event tracer is per-run opt-in.
  RequestTracer tracer(config_.trace_requests);
  obs::AttributionLedger ledger;
  ExecutorGroup exec(pool_, config_.executor, config_.health, config_.chaos,
                     &tracer, &ledger);

  ServeResult result;
  ServeStats& stats = result.stats;
  stats.offered = static_cast<std::int64_t>(trace.requests.size());
  stats.served_per_tier.assign(
      static_cast<std::size_t>(pool_.num_tiers()), 0);

  std::size_t next = 0;       // next trace request to arrive
  double cached_p99 = 0.0;    // refreshed only after completions
  Tick vnow = 0;
  bool shutdown_done = config_.shutdown_tick < 0;

  std::vector<Request> scratch;       // queue drain buffer
  std::vector<Request> expired;       // pre-dispatch deadline drops
  std::vector<Request> failed;        // executor terminal failures
  std::vector<ExecutedBatch> done;    // published completions

  while (true) {
    // ---- pick the next event tick -------------------------------------
    Tick now = -1;
    const auto consider = [&now](Tick t) {
      if (t >= 0 && (now < 0 || t < now)) now = t;
    };
    if (next < trace.requests.size()) consider(trace.requests[next].arrival);
    if (!batcher.empty()) consider(batcher.next_window_tick());
    consider(exec.next_event_tick());
    if (!shutdown_done) consider(config_.shutdown_tick);
    if (now < 0) break;      // no arrivals, nothing pending: done
    now = std::max(now, vnow);  // virtual time is monotone
    vnow = now;

    // ---- shutdown closes the admission boundary -----------------------
    if (!shutdown_done && now >= config_.shutdown_tick) {
      queue.close();
      shutdown_done = true;
    }

    // ---- executor state advances first --------------------------------
    // Completions at `now` retire (freeing lanes and admission capacity)
    // before this tick's arrivals are judged — the order a real pipeline
    // would observe within one scheduling quantum.
    done.clear();
    expired.clear();
    failed.clear();
    exec.advance(now, &done, &expired, &failed);
    const bool completed_any = !done.empty();
    for (ExecutedBatch& eb : done) {
      const std::size_t batch_n = eb.batch.requests.size();
      const std::int64_t classes = eb.output.shape()[1];
      const std::size_t ti = static_cast<std::size_t>(eb.batch.tier);
      BatchRecord record;
      record.tier = eb.batch.tier;
      record.replica = eb.replica;
      record.attempt = eb.attempt;
      record.dispatch = eb.dispatch;
      record.completion = eb.completion;
      for (std::size_t i = 0; i < batch_n; ++i) {
        const Request& req = eb.batch.requests[i];
        record.request_ids.push_back(req.id);
        Response resp;
        resp.id = req.id;
        resp.tier = req.tier;
        resp.admitted_tier = req.admitted_tier;
        resp.replica = eb.replica;
        resp.attempt = eb.attempt;
        resp.redirects = req.redirects;
        resp.arrival = req.arrival;
        resp.batch_close = eb.batch.close_tick;
        resp.dispatch = eb.dispatch;
        resp.completion = eb.completion;
        resp.within_deadline = eb.completion < req.deadline;
        const obs::RequestAttribution attr = ledger.totals_for(req.id);
        resp.ops = attr.ops;
        resp.energy_pj = attr.energy_pj;
        resp.wasted_energy_pj = attr.wasted_energy_pj();
        resp.predicted =
            nn::argmax_row(eb.output, static_cast<std::int64_t>(i));
        const float* row =
            eb.output.data() + static_cast<std::int64_t>(i) * classes;
        resp.output.assign(row, row + classes);
        metrics.latency.observe(resp.latency());
        metrics.wait.observe(eb.dispatch - req.arrival);
        ++stats.served;
        ++stats.served_per_tier[ti];
        if (resp.within_deadline) {
          ++stats.served_within_deadline;
        } else {
          ++stats.served_late;
        }
        result.responses.push_back(std::move(resp));
      }
      metrics.batch_size.observe(static_cast<std::int64_t>(batch_n));
      stats.end_tick = std::max(stats.end_tick, eb.completion);
      result.batches.push_back(std::move(record));
    }

    // ---- arrivals at this tick ----------------------------------------
    // The whole burst lands before the queue drains, so a one-tick burst
    // sees the capacity bound exactly as a real ingestion thread would.
    // Lane loss tightens admission: the bound scales by the schedulable
    // lane fraction, so a half-dead executor group sheds load at the
    // edge instead of queueing work it cannot serve in time.
    while (next < trace.requests.size() &&
           trace.requests[next].arrival <= now) {
      const TraceRequest& tr = trace.requests[next];
      ++next;
      std::size_t capacity_loss = 0;
      std::size_t effective_bound = config_.queue_capacity;
      if (bounded) {
        effective_bound = std::max<std::size_t>(
            1, static_cast<std::size_t>(
                   static_cast<double>(config_.queue_capacity) *
                   exec.capacity_fraction()));
        capacity_loss = config_.queue_capacity - effective_bound;
      }
      const std::size_t backlog = queue.size() + batcher.pending_total() +
                                  exec.backlog_requests();
      controller.update(now, backlog, effective_bound, cached_p99);
      Request r;
      r.id = tr.id;
      r.arrival = tr.arrival;
      r.deadline = tr.deadline;
      r.tier = degrade ? controller.current_tier() : 0;
      r.admitted_tier = r.tier;
      r.trace = tracer.mint(tr.id);
      r.trace.record(now, RequestEventKind::kArrival);
      r.trace.record(now, RequestEventKind::kTierAssign, r.tier);
      r.payload = provider(tr, sample);
      QNN_CHECK_MSG(r.payload.count() == per_row,
                    "payload provider returned " << r.payload.shape().to_string()
                                                 << ", want " << sample.to_string());
      switch (queue.try_push(std::move(r), now,
                             batcher.pending_total() +
                                 exec.backlog_requests() + capacity_loss)) {
        case RejectReason::kNone:            ++stats.admitted; break;
        case RejectReason::kQueueFull:       ++stats.rejected_full; break;
        case RejectReason::kDeadlineExpired: ++stats.rejected_expired; break;
        case RejectReason::kShutdown:        ++stats.rejected_shutdown; break;
      }
    }

    // ---- admitted work moves into the batcher -------------------------
    scratch.clear();
    queue.drain(&scratch);
    for (Request& r : scratch) batcher.add(std::move(r), now);

    // ---- close due batches (flush once no more work can arrive) -------
    const bool draining = next >= trace.requests.size() || queue.closed();
    std::vector<Batch> closed = draining ? batcher.flush(now, &expired)
                                         : batcher.poll(now, &expired);
    for (Batch& b : closed) exec.submit(std::move(b));

    // ---- dispatch onto free lanes -------------------------------------
    exec.dispatch(now, &expired, &failed);
    stats.expired_in_queue += static_cast<std::int64_t>(expired.size());
    stats.failed += static_cast<std::int64_t>(failed.size());

    // ---- refresh the controller's latency signal ----------------------
    if (completed_any) {
      const obs::Snapshot snap = obs::Registry::global().snapshot();
      cached_p99 = lat_delta.quantile(snap, "serve.latency_ticks", 0.99);
    }
    // Sliding p99 window: past the window the baseline advances to the
    // current snapshot, so a historical spike ages out and the upshift
    // path re-opens once the pipeline has actually been quiet.
    if (config_.p99_window_ticks > 0 &&
        now - window_start >= config_.p99_window_ticks) {
      lat_delta = baseline_of(obs::Registry::global().snapshot(),
                              "serve.latency_ticks");
      window_start = now;
      cached_p99 = 0.0;
    }
    stats.end_tick = std::max(stats.end_tick, now);
  }

  QNN_CHECK_MSG(exec.idle(),
                "event loop exited with work still pending in the executor");
  QNN_CHECK_MSG(batcher.empty(),
                "event loop exited with requests stuck in the batcher");

  stats.downshifts = controller.downshifts();
  stats.upshifts = controller.upshifts();
  const ExecutorStats& es = exec.stats();
  stats.hung_batches = es.hung_batches;
  stats.corrupt_batches = es.corrupt_batches;
  stats.crashed_batches = es.crashed_batches;
  stats.retries = es.retries;
  stats.redirected = es.redirected_requests;
  stats.discarded_results = es.discarded;
  stats.rescrubs = exec.health().rescrubs();
  stats.total_energy_uj = es.energy_uj;
  QNN_CHECK_MSG(stats.failed == es.failed_requests,
                "executor failure accounting diverged from the event loop");
  result.health_log = exec.health().log();

  // Conservation: every admitted request left the pipeline exactly once.
  QNN_CHECK_MSG(stats.admitted == stats.served + stats.expired_in_queue +
                                      stats.failed,
                "conservation violated: admitted "
                    << stats.admitted << " != served " << stats.served
                    << " + expired " << stats.expired_in_queue << " + failed "
                    << stats.failed);

  const obs::Snapshot final_snap = obs::Registry::global().snapshot();
  stats.p50_latency_ticks =
      lat_delta.quantile(final_snap, "serve.latency_ticks", 0.5);
  stats.p99_latency_ticks =
      lat_delta.quantile(final_snap, "serve.latency_ticks", 0.99);

  // Attribution roll-up + reconciliation: the ledger charged every
  // forward pass request-by-request; its total must equal the executor's
  // aggregate energy meter (same executions, different bookkeeping).
  stats.attributed_ops = ledger.total_ops();
  stats.attributed_energy_pj = ledger.total_energy_pj();
  stats.wasted_energy_pj = ledger.wasted_energy_pj();
  const double aggregate_pj = es.energy_uj * 1e6;
  QNN_CHECK_MSG(std::abs(stats.attributed_energy_pj - aggregate_pj) <=
                    1e-6 * std::max(1.0, aggregate_pj),
                "attribution ledger (" << stats.attributed_energy_pj
                                       << " pJ) diverged from the executor "
                                          "energy meter ("
                                       << aggregate_pj << " pJ)");

  result.request_events = tracer.take_events();
  result.lane_executions = tracer.take_executions();
  for (int t = 0; t < pool_.num_tiers(); ++t) {
    for (int r = 0; r < pool_.replicas_per_tier(); ++r) {
      result.lane_names.push_back(pool_.tier(t).name + "/r" +
                                  std::to_string(r));
    }
  }
  result.ledger = std::move(ledger);
  return result;
}

}  // namespace qnn::serve
