#include "serve/server.h"

#include <algorithm>
#include <cstring>
#include <deque>
#include <limits>
#include <utility>

#include "nn/metrics.h"
#include "obs/metrics.h"
#include "util/check.h"
#include "obs/trace.h"
#include "util/crc32.h"

namespace qnn::serve {
namespace {

// Latencies are measured in virtual ticks and tiers can be ~1e6 ticks
// per image, so the duration histograms need a deep tail.
constexpr std::int64_t kMaxLatencyBound = std::int64_t{1} << 40;

struct ServeMetrics {
  obs::Histogram latency, wait, batch_size;
};

ServeMetrics& serve_metrics() {
  obs::Registry& r = obs::Registry::global();
  static ServeMetrics m{
      r.histogram("serve.latency_ticks",
                  obs::exponential_bounds(kMaxLatencyBound)),
      r.histogram("serve.wait_ticks",
                  obs::exponential_bounds(kMaxLatencyBound)),
      r.histogram("serve.batch_size", obs::exponential_bounds(1024))};
  return m;
}

// The obs registry is process-global and accumulates across runs, so
// per-run quantiles are computed on the DELTA between the current
// snapshot and the baseline captured at run start. Bucket counts are
// exact integers, so the delta — and therefore the p99 the controller
// feeds back on — is thread-count-independent.
struct HistogramDelta {
  obs::MetricSnapshot base;  // zero-valued when absent at baseline

  double quantile(const obs::Snapshot& current, const std::string& name,
                  double q) const {
    const obs::MetricSnapshot* cur = current.find(name);
    if (cur == nullptr) return 0.0;
    obs::MetricSnapshot delta = *cur;
    if (!base.buckets.empty()) {
      QNN_CHECK_MSG(base.buckets.size() == delta.buckets.size(),
                    "histogram " << name << " changed shape mid-run");
      for (std::size_t i = 0; i < delta.buckets.size(); ++i) {
        delta.buckets[i] -= base.buckets[i];
      }
      delta.count -= base.count;
      delta.sum -= base.sum;
    }
    return delta.quantile(q);
  }
};

HistogramDelta baseline_of(const obs::Snapshot& snap,
                           const std::string& name) {
  HistogramDelta d;
  const obs::MetricSnapshot* m = snap.find(name);
  if (m != nullptr) d.base = *m;
  return d;
}

}  // namespace

const char* admission_policy_name(AdmissionPolicy p) {
  switch (p) {
    case AdmissionPolicy::kDegrade:     return "degrade";
    case AdmissionPolicy::kRejectOnly:  return "reject_only";
    case AdmissionPolicy::kNoAdmission: return "no_admission";
  }
  return "?";
}

std::uint32_t ServeResult::digest() const {
  std::uint32_t crc = 0;
  for (const Response& r : responses) {
    crc = crc32(&r.id, sizeof(r.id), crc);
    crc = crc32(&r.tier, sizeof(r.tier), crc);
    crc = crc32(&r.completion, sizeof(r.completion), crc);
    crc = crc32(r.output.data(), r.output.size() * sizeof(float), crc);
  }
  return crc;
}

json::Value serve_stats_to_json(const ServeStats& s) {
  json::Value v = json::Value::object();
  v.set("offered", json::Value(s.offered));
  v.set("admitted", json::Value(s.admitted));
  v.set("rejected_full", json::Value(s.rejected_full));
  v.set("rejected_expired", json::Value(s.rejected_expired));
  v.set("rejected_shutdown", json::Value(s.rejected_shutdown));
  v.set("expired_in_queue", json::Value(s.expired_in_queue));
  v.set("served", json::Value(s.served));
  v.set("served_within_deadline", json::Value(s.served_within_deadline));
  v.set("served_late", json::Value(s.served_late));
  json::Value per_tier = json::Value::array();
  for (std::int64_t n : s.served_per_tier) per_tier.push_back(json::Value(n));
  v.set("served_per_tier", std::move(per_tier));
  v.set("downshifts", json::Value(s.downshifts));
  v.set("upshifts", json::Value(s.upshifts));
  v.set("end_tick", json::Value(s.end_tick));
  v.set("total_energy_uj", json::Value(s.total_energy_uj));
  v.set("p50_latency_ticks", json::Value(s.p50_latency_ticks));
  v.set("p99_latency_ticks", json::Value(s.p99_latency_ticks));
  return v;
}

Server::Server(ReplicaPool& pool, ServerConfig config)
    : pool_(pool), config_(std::move(config)) {
  QNN_CHECK_MSG(pool_.num_tiers() >= 1, "server needs at least one tier");
}

ServeResult Server::run_trace(const ArrivalTrace& trace) {
  QNN_SPAN("serve.run_trace", "serve");
  ServeMetrics& metrics = serve_metrics();
  const HistogramDelta lat_delta =
      baseline_of(obs::Registry::global().snapshot(), "serve.latency_ticks");

  const Shape sample = trace.sample_shape();
  const std::int64_t per_row = sample.count();
  const PayloadProvider provider =
      config_.payload ? config_.payload : PayloadProvider(&default_payload);

  const bool bounded = config_.policy != AdmissionPolicy::kNoAdmission;
  const std::size_t capacity =
      bounded ? config_.queue_capacity
              : std::numeric_limits<std::size_t>::max();
  const bool degrade = config_.policy == AdmissionPolicy::kDegrade;

  BoundedQueue queue(capacity);
  DynamicBatcher batcher(config_.batcher, pool_.num_tiers());
  OverloadController controller(config_.controller, pool_.num_tiers());

  ServeResult result;
  ServeStats& stats = result.stats;
  stats.offered = static_cast<std::int64_t>(trace.requests.size());
  stats.served_per_tier.assign(
      static_cast<std::size_t>(pool_.num_tiers()), 0);

  std::deque<Batch> ready;           // closed batches awaiting the executor
  std::size_t ready_requests = 0;    // total requests across `ready`
  Tick executor_free = 0;            // executor idle at this tick
  std::size_t next = 0;              // next trace request to arrive
  std::vector<int> round_robin(
      static_cast<std::size_t>(pool_.num_tiers()), 0);
  double cached_p99 = 0.0;  // refreshed only after completions
  Tick vnow = 0;
  bool shutdown_done = config_.shutdown_tick < 0;

  std::vector<Request> scratch;  // queue drain buffer
  std::vector<Request> expired;  // batcher drop buffer

  while (true) {
    // ---- pick the next event tick -------------------------------------
    Tick now = -1;
    const auto consider = [&now](Tick t) {
      if (t >= 0 && (now < 0 || t < now)) now = t;
    };
    if (next < trace.requests.size()) consider(trace.requests[next].arrival);
    if (!batcher.empty()) consider(batcher.next_window_tick());
    if (!ready.empty()) consider(executor_free);
    if (!shutdown_done) consider(config_.shutdown_tick);
    if (now < 0) break;      // no arrivals, nothing pending: done
    now = std::max(now, vnow);  // virtual time is monotone
    vnow = now;

    // ---- shutdown closes the admission boundary -----------------------
    if (!shutdown_done && now >= config_.shutdown_tick) {
      queue.close();
      shutdown_done = true;
    }

    // ---- arrivals at this tick ----------------------------------------
    // The whole burst lands before the queue drains, so a one-tick burst
    // sees the capacity bound exactly as a real ingestion thread would.
    while (next < trace.requests.size() &&
           trace.requests[next].arrival <= now) {
      const TraceRequest& tr = trace.requests[next];
      ++next;
      const std::size_t backlog =
          queue.size() + batcher.pending_total() + ready_requests;
      controller.update(now, backlog, config_.queue_capacity, cached_p99);
      Request r;
      r.id = tr.id;
      r.arrival = tr.arrival;
      r.deadline = tr.deadline;
      r.tier = degrade ? controller.current_tier() : 0;
      r.payload = provider(tr, sample);
      QNN_CHECK_MSG(r.payload.count() == per_row,
                    "payload provider returned " << r.payload.shape().to_string()
                                                 << ", want " << sample.to_string());
      switch (queue.try_push(std::move(r), now,
                             batcher.pending_total() + ready_requests)) {
        case RejectReason::kNone:            ++stats.admitted; break;
        case RejectReason::kQueueFull:       ++stats.rejected_full; break;
        case RejectReason::kDeadlineExpired: ++stats.rejected_expired; break;
        case RejectReason::kShutdown:        ++stats.rejected_shutdown; break;
      }
    }

    // ---- admitted work moves into the batcher -------------------------
    scratch.clear();
    queue.drain(&scratch);
    for (Request& r : scratch) batcher.add(std::move(r), now);

    // ---- close due batches (flush once no more work can arrive) -------
    const bool draining = next >= trace.requests.size() || queue.closed();
    expired.clear();
    std::vector<Batch> closed = draining ? batcher.flush(now, &expired)
                                         : batcher.poll(now, &expired);
    stats.expired_in_queue += static_cast<std::int64_t>(expired.size());
    for (Batch& b : closed) {
      ready_requests += b.requests.size();
      ready.push_back(std::move(b));
    }

    // ---- execute ready batches while the executor is idle -------------
    bool completed_any = false;
    while (!ready.empty() && executor_free <= now) {
      Batch b = std::move(ready.front());
      ready.pop_front();
      const std::size_t batch_n = b.requests.size();
      ready_requests -= batch_n;
      const TierSpec& tier = pool_.tier(b.tier);

      std::vector<std::int64_t> dims = sample.dims();
      dims[0] = static_cast<std::int64_t>(batch_n);
      Tensor input{Shape(dims)};
      for (std::size_t i = 0; i < batch_n; ++i) {
        std::memcpy(input.data() + static_cast<std::int64_t>(i) * per_row,
                    b.requests[i].payload.data(),
                    static_cast<std::size_t>(per_row) * sizeof(float));
      }

      const std::size_t ti = static_cast<std::size_t>(b.tier);
      const int replica = round_robin[ti];
      round_robin[ti] = (replica + 1) % pool_.replicas_per_tier();
      const Tensor output = pool_.forward(b.tier, replica, input);
      QNN_CHECK_MSG(output.shape().rank() == 2 &&
                        output.shape()[0] == static_cast<std::int64_t>(batch_n),
                    "replica output is not (batch, classes)");
      const std::int64_t classes = output.shape()[1];

      const Tick service = tier.batch_overhead_ticks +
                           static_cast<Tick>(batch_n) * tier.ticks_per_image;
      const Tick completion = now + service;
      executor_free = completion;
      stats.end_tick = std::max(stats.end_tick, completion);
      stats.total_energy_uj +=
          static_cast<double>(batch_n) * tier.energy_per_image_uj;

      BatchRecord record;
      record.tier = b.tier;
      record.dispatch = now;
      record.completion = completion;
      for (std::size_t i = 0; i < batch_n; ++i) {
        const Request& req = b.requests[i];
        record.request_ids.push_back(req.id);
        Response resp;
        resp.id = req.id;
        resp.tier = req.tier;
        resp.arrival = req.arrival;
        resp.dispatch = now;
        resp.completion = completion;
        resp.within_deadline = completion < req.deadline;
        resp.predicted = nn::argmax_row(output, static_cast<std::int64_t>(i));
        const float* row =
            output.data() + static_cast<std::int64_t>(i) * classes;
        resp.output.assign(row, row + classes);
        metrics.latency.observe(resp.latency());
        metrics.wait.observe(now - req.arrival);
        ++stats.served;
        ++stats.served_per_tier[ti];
        if (resp.within_deadline) {
          ++stats.served_within_deadline;
        } else {
          ++stats.served_late;
        }
        result.responses.push_back(std::move(resp));
      }
      metrics.batch_size.observe(static_cast<std::int64_t>(batch_n));
      result.batches.push_back(std::move(record));
      completed_any = true;
    }

    // ---- refresh the controller's latency signal ----------------------
    if (completed_any) {
      const obs::Snapshot snap = obs::Registry::global().snapshot();
      cached_p99 = lat_delta.quantile(snap, "serve.latency_ticks", 0.99);
    }
    stats.end_tick = std::max(stats.end_tick, now);
  }

  stats.downshifts = controller.downshifts();
  stats.upshifts = controller.upshifts();
  const obs::Snapshot final_snap = obs::Registry::global().snapshot();
  stats.p50_latency_ticks =
      lat_delta.quantile(final_snap, "serve.latency_ticks", 0.5);
  stats.p99_latency_ticks =
      lat_delta.quantile(final_snap, "serve.latency_ticks", 0.99);
  return result;
}

}  // namespace qnn::serve
