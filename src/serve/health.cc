#include "serve/health.h"

#include <sstream>

#include "obs/metrics.h"
#include "util/check.h"

namespace qnn::serve {
namespace {

struct HealthMetrics {
  obs::Counter strikes, quarantines, crashes, rescrubs, deaths;
  obs::Gauge schedulable;
};

HealthMetrics& health_metrics() {
  obs::Registry& r = obs::Registry::global();
  static HealthMetrics m{r.counter("serve.health.strikes"),
                         r.counter("serve.health.quarantines"),
                         r.counter("serve.health.crashes"),
                         r.counter("serve.health.rescrubs"),
                         r.counter("serve.health.deaths"),
                         r.gauge("serve.health.schedulable_lanes")};
  return m;
}

}  // namespace

const char* lane_state_name(LaneState s) {
  switch (s) {
    case LaneState::kHealthy:     return "healthy";
    case LaneState::kSuspect:     return "suspect";
    case LaneState::kQuarantined: return "quarantined";
    case LaneState::kDead:        return "dead";
  }
  return "?";
}

const char* health_reason_name(HealthReason r) {
  switch (r) {
    case HealthReason::kHangStrike:       return "hang_strike";
    case HealthReason::kCorruptDetected:  return "corrupt_detected";
    case HealthReason::kCrash:            return "crash";
    case HealthReason::kRescrubbed:       return "rescrubbed";
    case HealthReason::kRescrubFailed:    return "rescrub_failed";
    case HealthReason::kRescrubExhausted: return "rescrub_exhausted";
    case HealthReason::kFailStop:         return "fail_stop";
  }
  return "?";
}

std::string transition_to_string(const HealthTransition& t) {
  std::ostringstream os;
  os << "t=" << t.tick << " lane=" << t.lane << " "
     << lane_state_name(t.from) << "->" << lane_state_name(t.to) << " ("
     << health_reason_name(t.reason) << ")";
  return os.str();
}

HealthLattice::HealthLattice(int num_lanes, const HealthConfig& config)
    : config_(config), lanes_(static_cast<std::size_t>(num_lanes)) {
  QNN_CHECK_MSG(num_lanes >= 1, "health lattice needs at least one lane");
  QNN_CHECK_MSG(config.suspect_strikes >= 1,
                "suspect_strikes must be positive");
  QNN_CHECK_MSG(config.quarantine_ticks >= 0,
                "quarantine_ticks must be >= 0");
  QNN_CHECK_MSG(config.max_rescrubs >= 0, "max_rescrubs must be >= 0");
  health_metrics().schedulable.set(num_lanes);
}

LaneState HealthLattice::state(int lane) const {
  return lanes_.at(static_cast<std::size_t>(lane)).state;
}

bool HealthLattice::schedulable(int lane) const {
  const LaneState s = state(lane);
  return s == LaneState::kHealthy || s == LaneState::kSuspect;
}

int HealthLattice::schedulable_count() const {
  int n = 0;
  for (int i = 0; i < num_lanes(); ++i) n += schedulable(i) ? 1 : 0;
  return n;
}

int HealthLattice::alive_count() const {
  int n = 0;
  for (const LaneHealth& l : lanes_) n += l.state != LaneState::kDead;
  return n;
}

void HealthLattice::transition(Tick now, int lane, LaneState to,
                               HealthReason reason) {
  LaneHealth& l = lanes_.at(static_cast<std::size_t>(lane));
  log_.push_back(HealthTransition{now, lane, l.state, to, reason});
  if (observer_) observer_(log_.back());
  l.state = to;
  health_metrics().schedulable.set(schedulable_count());
  if (to == LaneState::kDead) health_metrics().deaths.inc();
}

void HealthLattice::quarantine_or_kill(Tick now, int lane,
                                       HealthReason reason) {
  LaneHealth& l = lanes_.at(static_cast<std::size_t>(lane));
  if (l.rescrubs_used >= config_.max_rescrubs) {
    transition(now, lane, LaneState::kDead, HealthReason::kRescrubExhausted);
    return;
  }
  l.rescrub_due = now + config_.quarantine_ticks;
  health_metrics().quarantines.inc();
  transition(now, lane, LaneState::kQuarantined, reason);
}

void HealthLattice::on_hang(Tick now, int lane) {
  LaneHealth& l = lanes_.at(static_cast<std::size_t>(lane));
  if (!schedulable(lane)) return;  // already isolated
  health_metrics().strikes.inc();
  ++l.strikes;
  if (l.strikes >= config_.suspect_strikes) {
    quarantine_or_kill(now, lane, HealthReason::kHangStrike);
  } else if (l.state == LaneState::kHealthy) {
    transition(now, lane, LaneState::kSuspect, HealthReason::kHangStrike);
  }
}

void HealthLattice::on_corrupt(Tick now, int lane) {
  if (state(lane) == LaneState::kDead ||
      state(lane) == LaneState::kQuarantined) {
    return;
  }
  quarantine_or_kill(now, lane, HealthReason::kCorruptDetected);
}

void HealthLattice::on_crash(Tick now, int lane) {
  if (state(lane) == LaneState::kDead) return;
  health_metrics().crashes.inc();
  transition(now, lane, LaneState::kDead, HealthReason::kCrash);
}

void HealthLattice::on_fail_stop(Tick now, int lane) {
  if (state(lane) == LaneState::kDead) return;
  transition(now, lane, LaneState::kDead, HealthReason::kFailStop);
}

Tick HealthLattice::next_rescrub_tick() const {
  Tick next = kNoTick;
  for (const LaneHealth& l : lanes_) {
    if (l.state != LaneState::kQuarantined) continue;
    if (next == kNoTick || l.rescrub_due < next) next = l.rescrub_due;
  }
  return next;
}

Tick HealthLattice::rescrub_due(int lane) const {
  const LaneHealth& l = lanes_.at(static_cast<std::size_t>(lane));
  return l.state == LaneState::kQuarantined ? l.rescrub_due : kNoTick;
}

std::vector<int> HealthLattice::due_rescrubs(Tick now) const {
  std::vector<int> due;
  for (int i = 0; i < num_lanes(); ++i) {
    const LaneHealth& l = lanes_[static_cast<std::size_t>(i)];
    if (l.state == LaneState::kQuarantined && l.rescrub_due <= now) {
      due.push_back(i);
    }
  }
  return due;
}

void HealthLattice::on_rescrubbed(Tick now, int lane, bool ok) {
  LaneHealth& l = lanes_.at(static_cast<std::size_t>(lane));
  QNN_CHECK_MSG(l.state == LaneState::kQuarantined,
                "rescrub reported for a lane not in quarantine");
  ++l.rescrubs_used;
  ++rescrubs_;
  health_metrics().rescrubs.inc();
  if (ok) {
    l.strikes = 0;
    l.rescrub_due = kNoTick;
    transition(now, lane, LaneState::kHealthy, HealthReason::kRescrubbed);
  } else {
    transition(now, lane, LaneState::kDead, HealthReason::kRescrubFailed);
  }
}

}  // namespace qnn::serve
