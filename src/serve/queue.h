// Bounded request queue — the admission-control boundary of the serving
// layer (DESIGN.md §12).
//
// Contract: try_push NEVER blocks the producer. A full queue rejects
// with RejectReason::kQueueFull, a closed queue with kShutdown, and a
// request whose deadline has already passed with kDeadlineExpired —
// typed errors, not waits, so an overloaded server sheds work at the
// edge instead of propagating back-pressure into callers.
//
// The queue is mutex-protected and safe for concurrent producers and a
// draining consumer (exercised under TSan). The deterministic replay
// engine (serve::Server) drives it single-threaded in arrival order; the
// thread safety is for the real-time ingestion path.
#pragma once

#include <cstddef>
#include <deque>
#include <mutex>
#include <vector>

#include "serve/request.h"

namespace qnn::serve {

class BoundedQueue {
 public:
  // `capacity` 0 is legal and rejects every push (useful as a
  // "no queueing" configuration and as an edge case).
  explicit BoundedQueue(std::size_t capacity);

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  // Admits `r` unless the queue is closed, full, or the request's
  // deadline is not strictly after `now`. Returns kNone on success,
  // otherwise the typed rejection; never blocks.
  //
  // `extra_backlog` counts admitted-but-undispatched work that a
  // composed server has already moved past this queue (batcher pending,
  // closed batches awaiting an executor) against the same capacity
  // bound, so the admission limit covers the WHOLE pre-execution
  // backlog, not just the bytes currently sitting in this deque.
  RejectReason try_push(Request r, Tick now, std::size_t extra_backlog = 0);

  // Moves every queued request into `out` (appending, FIFO order) and
  // returns how many were drained.
  std::size_t drain(std::vector<Request>* out);

  // Stops admission: subsequent try_push calls return kShutdown.
  // Already-queued requests stay queued so a draining server can finish
  // them ("shutdown drains in-flight work, never drops it").
  void close();
  bool closed() const;

  std::size_t size() const;
  std::size_t capacity() const { return capacity_; }

 private:
  const std::size_t capacity_;
  mutable std::mutex m_;
  std::deque<Request> q_;
  bool closed_ = false;
};

}  // namespace qnn::serve
