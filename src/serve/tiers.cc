#include "serve/tiers.h"

#include <algorithm>

#include "hw/accelerator.h"
#include "hw/schedule.h"
#include "obs/trace.h"
#include "util/check.h"
#include "util/crc32.h"

namespace qnn::serve {

std::vector<TierSpec> default_tier_lattice() {
  std::vector<TierSpec> tiers(3);
  tiers[0].name = "float";
  tiers[0].precision = quant::float_config();
  tiers[1].name = "fixed16";
  tiers[1].precision = quant::fixed_config(16, 16);
  tiers[2].name = "fixed8";
  tiers[2].precision = quant::fixed_config(8, 8);
  return tiers;
}

void derive_tier_costs(const nn::Network& net, const Shape& sample_input,
                       std::vector<TierSpec>* tiers) {
  QNN_CHECK(tiers != nullptr && !tiers->empty());
  const std::vector<nn::LayerDesc> descs = net.describe(sample_input);
  for (TierSpec& t : *tiers) {
    hw::AcceleratorConfig cfg;
    cfg.precision = t.precision;
    const hw::Accelerator acc(cfg);
    const hw::ScheduleResult sched = hw::schedule_network(descs, acc);
    const int bits =
        t.precision.is_float()
            ? 32
            : std::max(t.precision.weight_bits, t.precision.input_bits);
    t.ticks_per_image = std::max<Tick>(
        1, sched.total_cycles * bits / 32);
    t.batch_overhead_ticks = std::max<Tick>(1, t.ticks_per_image / 8);
    t.energy_per_image_uj = sched.energy_uj(acc);
    t.macs_per_image = 0;
    for (const hw::LayerSchedule& l : sched.layers) t.macs_per_image += l.macs;
    t.energy_per_op_pj =
        t.macs_per_image > 0
            ? t.energy_per_image_uj * 1e6 /
                  static_cast<double>(t.macs_per_image)
            : 0.0;
  }
}

ReplicaPool::ReplicaPool(const nn::Network& master,
                         const Tensor& calibration_batch,
                         std::vector<TierSpec> tiers, int replicas_per_tier)
    : tiers_(std::move(tiers)), replicas_per_tier_(replicas_per_tier) {
  QNN_CHECK_MSG(!tiers_.empty(), "replica pool needs at least one tier");
  QNN_CHECK_MSG(replicas_per_tier_ >= 1,
                "replicas_per_tier must be positive");
  QNN_SPAN_N("replica_pool_build", "serve",
             static_cast<std::int64_t>(tiers_.size()) * replicas_per_tier_);
  for (const TierSpec& t : tiers_) {
    // Tier prototype: fresh clone of the master, calibrated once.
    nets_.push_back(std::make_unique<nn::Network>(master.clone()));
    auto proto = std::make_unique<quant::QuantizedNetwork>(*nets_.back(),
                                                           t.precision);
    proto->calibrate(calibration_batch);
    quant::QuantizedNetwork* proto_ptr = proto.get();
    replicas_.push_back(std::move(proto));
    // Extra replicas share the prototype's calibration via clone_onto.
    for (int r = 1; r < replicas_per_tier_; ++r) {
      nets_.push_back(std::make_unique<nn::Network>(master.clone()));
      replicas_.push_back(std::make_unique<quant::QuantizedNetwork>(
          proto_ptr->clone_onto(*nets_.back())));
    }
  }
  // Freeze after all clone_onto calls: cloning requires restored
  // masters, freezing quantizes them in place.
  for (auto& q : replicas_) {
    q->set_training_mode(false);
    q->freeze_inference();
  }
  // Pin the golden parameter image per tier: identical masters +
  // identical calibration freeze to identical bytes, so one CRC per
  // tier audits every replica in it.
  golden_crcs_.resize(tiers_.size());
  for (int t = 0; t < num_tiers(); ++t) {
    golden_crcs_[static_cast<std::size_t>(t)] = param_crc(t, 0);
    for (int r = 1; r < replicas_per_tier_; ++r) {
      QNN_CHECK_MSG(param_crc(t, r) == golden_crcs_[static_cast<std::size_t>(t)],
                    "tier " << tiers_[static_cast<std::size_t>(t)].name
                            << " replica " << r
                            << " froze to different parameter bytes");
    }
  }
}

const TierSpec& ReplicaPool::tier(int t) const {
  QNN_CHECK(t >= 0 && t < num_tiers());
  return tiers_[static_cast<std::size_t>(t)];
}

quant::QuantizedNetwork& ReplicaPool::replica(int t, int r) {
  QNN_CHECK(t >= 0 && t < num_tiers());
  QNN_CHECK(r >= 0 && r < replicas_per_tier_);
  return *replicas_[static_cast<std::size_t>(t * replicas_per_tier_ + r)];
}

Tensor ReplicaPool::forward(int t, int r, const Tensor& batch) {
  QNN_SPAN_N("replica_forward", "serve", batch.shape()[0]);
  return replica(t, r).forward(batch);
}

std::uint32_t ReplicaPool::param_crc(int t, int r) {
  std::uint32_t crc = 0;
  for (const nn::Param* p : replica(t, r).trainable_params()) {
    crc = crc32(p->value.data(),
                static_cast<std::size_t>(p->value.count()) * sizeof(float),
                crc);
  }
  return crc;
}

std::uint32_t ReplicaPool::golden_param_crc(int t) const {
  QNN_CHECK(t >= 0 && t < num_tiers());
  return golden_crcs_[static_cast<std::size_t>(t)];
}

bool ReplicaPool::rescrub_replica(int t, int r) {
  QNN_SPAN_N("replica_rescrub", "serve", lane_index(t, r));
  quant::QuantizedNetwork& q = replica(t, r);
  const std::size_t layers =
      nets_[static_cast<std::size_t>(lane_index(t, r))]->num_layers();
  for (std::size_t i = 0; i < layers; ++i) q.rescrub_layer_params(i);
  return param_crc(t, r) == golden_param_crc(t);
}

}  // namespace qnn::serve
