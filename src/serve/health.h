// Replica-lane health lattice (DESIGN.md §13).
//
// Every executor lane (one replica of one precision tier) carries a
// four-state health machine:
//
//   healthy ──strike──▶ suspect ──strikes/corrupt──▶ quarantined
//      ▲                                                  │
//      └────────────── rescrubbed (params restored) ──────┘
//                                                         │
//   dead ◀── crash / rescrub budget exhausted ────────────┘
//
// Strikes come from the virtual-time watchdog (a batch overran its
// execution budget); definite evidence — a parameter-CRC audit mismatch
// against the tier's golden image, or a NaN/Inf in the output where the
// guard scan proves the replica itself is broken — quarantines the lane
// immediately. A quarantined lane is unschedulable until its rescrub
// completes (`quarantine_ticks` of virtual time later): parameters are
// re-read from the ECC-protected masters via
// QuantizedNetwork::rescrub_layer_params and the CRC re-audited. Each
// lane gets `max_rescrubs` repairs over its lifetime; beyond that (or
// on a crash fault) it is dead and never scheduled again.
//
// Everything is a pure function of (virtual tick, event sequence): the
// transition log replays bit-identically at any thread count and is
// folded into the server's replay digest.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "serve/request.h"

namespace qnn::serve {

enum class LaneState {
  kHealthy = 0,
  kSuspect,      // struck by the watchdog; still schedulable
  kQuarantined,  // awaiting rescrub; not schedulable
  kDead,         // crashed or rescrub budget exhausted; permanent
};

const char* lane_state_name(LaneState s);

// Why a transition fired (recorded in the log, never branches on it).
enum class HealthReason {
  kHangStrike = 0,   // watchdog declared a batch hung
  kCorruptDetected,  // param CRC mismatch or poisoned output
  kCrash,            // crash fault: lane is gone
  kRescrubbed,       // repair verified; back to healthy
  kRescrubFailed,    // repair did not restore the golden image
  kRescrubExhausted, // needed another rescrub past max_rescrubs
  kFailStop,         // fail-stop policy retires the lane on any fault
};

const char* health_reason_name(HealthReason r);

struct HealthConfig {
  int suspect_strikes = 2;    // watchdog strikes before quarantine
  Tick quarantine_ticks = 0;  // virtual rescrub latency
  int max_rescrubs = 2;       // lifetime repairs per lane
};

struct HealthTransition {
  Tick tick = 0;
  int lane = 0;  // flat lane index: tier * replicas_per_tier + replica
  LaneState from = LaneState::kHealthy;
  LaneState to = LaneState::kHealthy;
  HealthReason reason = HealthReason::kHangStrike;

  bool operator==(const HealthTransition&) const = default;
};

std::string transition_to_string(const HealthTransition& t);

// The per-lane state machines plus the shared transition log. The
// lattice only tracks state; the ExecutorGroup decides WHEN to call it
// and performs the actual rescrub I/O.
class HealthLattice {
 public:
  HealthLattice(int num_lanes, const HealthConfig& config);

  int num_lanes() const { return static_cast<int>(lanes_.size()); }
  LaneState state(int lane) const;
  // Healthy and suspect lanes accept work; quarantined/dead do not.
  bool schedulable(int lane) const;
  int schedulable_count() const;
  // Lanes that are not dead (quarantined lanes will return).
  int alive_count() const;

  // Watchdog strike: healthy -> suspect, suspect -> (strikes ==
  // suspect_strikes) quarantined. No-op on quarantined/dead lanes.
  void on_hang(Tick now, int lane);
  // Definite corruption: straight to quarantine (or dead if the rescrub
  // budget is exhausted).
  void on_corrupt(Tick now, int lane);
  // Crash fault: the lane is permanently gone.
  void on_crash(Tick now, int lane);
  // Fail-stop policy: any fault retires the lane without repair.
  void on_fail_stop(Tick now, int lane);

  // Earliest tick a quarantined lane's rescrub comes due, or kNoTick.
  static constexpr Tick kNoTick = -1;
  Tick next_rescrub_tick() const;
  // This lane's rescrub due tick, or kNoTick when not quarantined.
  Tick rescrub_due(int lane) const;
  // Quarantined lanes whose rescrub is due at `now`, in lane order.
  std::vector<int> due_rescrubs(Tick now) const;
  // Reports the repair outcome: ok -> healthy (strikes reset), !ok ->
  // dead (the masters themselves cannot be trusted).
  void on_rescrubbed(Tick now, int lane, bool ok);

  const std::vector<HealthTransition>& log() const { return log_; }
  std::int64_t rescrubs() const { return rescrubs_; }

  // Called synchronously after each transition is appended to the log
  // (request tracing hooks in here; the lattice never branches on it).
  void set_observer(std::function<void(const HealthTransition&)> observer) {
    observer_ = std::move(observer);
  }

 private:
  struct LaneHealth {
    LaneState state = LaneState::kHealthy;
    int strikes = 0;
    int rescrubs_used = 0;
    Tick rescrub_due = kNoTick;
  };

  void transition(Tick now, int lane, LaneState to, HealthReason reason);
  void quarantine_or_kill(Tick now, int lane, HealthReason reason);

  HealthConfig config_;
  std::vector<LaneHealth> lanes_;
  std::vector<HealthTransition> log_;
  std::int64_t rescrubs_ = 0;
  std::function<void(const HealthTransition&)> observer_;
};

}  // namespace qnn::serve
