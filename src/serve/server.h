// Deterministic virtual-time inference server (DESIGN.md §12–§13).
//
// The server replays a recorded ArrivalTrace through the full serving
// pipeline — admission (BoundedQueue), deadline-aware batching
// (DynamicBatcher), precision-downshift overload control
// (OverloadController), and per-lane executors over frozen replicas
// (ExecutorGroup / ReplicaPool) — entirely in virtual time. Service
// durations come from each tier's modeled cost (accelerator schedule
// cycles scaled by operand bits), never from wall clock, and the event
// loop itself is serial; the only real parallelism is INSIDE each
// forward pass, which the deterministic thread pool already guarantees
// is bit-identical at any thread count (§9). Consequence: batch
// composition, tier assignments, rejections, lane health transitions,
// and output bytes replay identically at 1, 4, or 8 worker threads —
// overload AND failure behavior are testable functions of the trace.
//
// Fault tolerance (§13): each (tier, replica) pair is an executor lane
// with its own health state machine. An optional chaos schedule injects
// lane faults (hang / corrupt / crash) at fixed virtual ticks; the
// watchdog, CRC audit, rescrub, and retry-with-redirect machinery keep
// the conservation invariant — every admitted request is served,
// expired, or failed exactly once, and no result is published twice.
//
// The p99 feedback signal closes the loop THROUGH the obs registry: the
// server observes per-request latency into a histogram and the
// controller reads it back via Snapshot::quantile, as a delta against a
// baseline snapshot. With `p99_window_ticks > 0` the baseline slides:
// the delta covers only the most recent window, so a latency spike ages
// out of the signal once the pipeline has been quiet (recovery is
// possible after an overload burst ends). Bucket counts are exact
// integers, so even this feedback path is thread-count-independent.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "faults/lane_faults.h"
#include "obs/ledger.h"
#include "serve/batcher.h"
#include "serve/controller.h"
#include "serve/executors.h"
#include "serve/health.h"
#include "serve/queue.h"
#include "serve/request.h"
#include "serve/request_trace.h"
#include "serve/tiers.h"
#include "serve/trace.h"
#include "util/json.h"

namespace qnn::serve {

// What admission does when pressure rises.
enum class AdmissionPolicy {
  kDegrade,      // downshift tiers first, reject only when full
  kRejectOnly,   // full precision always; full queue rejects
  kNoAdmission,  // unbounded queue, full precision (baseline)
};
const char* admission_policy_name(AdmissionPolicy p);

// Synthesizes a request's input tensor; defaults to default_payload.
using PayloadProvider =
    std::function<Tensor(const TraceRequest&, const Shape& sample_shape)>;

struct ServerConfig {
  std::size_t queue_capacity = 64;
  BatcherConfig batcher;
  ControllerConfig controller;
  AdmissionPolicy policy = AdmissionPolicy::kDegrade;
  // Executor lanes: watchdog budget, retry/redirect policy (§13).
  ExecutorConfig executor;
  // Replica health lattice: strike/quarantine/rescrub budgets (§13).
  HealthConfig health;
  // Optional deterministic fault schedule; must outlive run_trace.
  // nullptr = no injected faults.
  const faults::LaneFaultSchedule* chaos = nullptr;
  // Sliding window for the controller's p99 signal; 0 = whole-run delta
  // (a past spike then suppresses upshift forever).
  Tick p99_window_ticks = 0;
  // Virtual tick at which the queue closes (admission stops, in-flight
  // work drains); -1 = never, the trace runs to completion.
  Tick shutdown_tick = -1;
  // Record the per-request causal event log + per-lane execution trace
  // (DESIGN.md §14). Off by default; the attribution ledger always runs
  // (it fills Response energy fields), and neither feeds back into
  // scheduling, so on == off leaves the replay digest bit-identical.
  bool trace_requests = false;
  PayloadProvider payload;  // null -> default_payload
};

struct ServeStats {
  std::int64_t offered = 0;
  std::int64_t admitted = 0;
  std::int64_t rejected_full = 0;
  std::int64_t rejected_expired = 0;
  std::int64_t rejected_shutdown = 0;
  std::int64_t expired_in_queue = 0;  // admitted but dropped pre-dispatch
  std::int64_t served = 0;
  std::int64_t served_within_deadline = 0;
  std::int64_t served_late = 0;
  // Admitted requests terminally dropped by the executor layer: retry
  // budget exhausted or no lane left that could ever run them.
  std::int64_t failed = 0;
  std::vector<std::int64_t> served_per_tier;
  std::int64_t downshifts = 0;
  std::int64_t upshifts = 0;
  // Fault-tolerance counters (§13). All zero in a fault-free run.
  std::int64_t hung_batches = 0;     // watchdog firings
  std::int64_t corrupt_batches = 0;  // completion-audit failures
  std::int64_t crashed_batches = 0;  // in-flight batches lost to crashes
  std::int64_t retries = 0;          // batch re-dispatches queued
  std::int64_t redirected = 0;       // requests moved across tiers
  std::int64_t rescrubs = 0;         // replica repairs performed
  std::int64_t discarded_results = 0;  // executions never published
  Tick end_tick = 0;
  double total_energy_uj = 0.0;
  double p50_latency_ticks = 0.0;
  double p99_latency_ticks = 0.0;
  // Attribution ledger roll-up (§14). attributed_energy_pj reconciles
  // with total_energy_uj * 1e6 (QNN_CHECKed); the wasted share is what
  // discarded executions burned.
  std::int64_t attributed_ops = 0;
  double attributed_energy_pj = 0.0;
  double wasted_energy_pj = 0.0;
};

struct ServeResult {
  std::vector<Response> responses;  // completion order
  std::vector<BatchRecord> batches;
  // Every lane health transition, in virtual-time order — part of the
  // replay identity.
  std::vector<HealthTransition> health_log;
  ServeStats stats;
  // Request-scoped tracing artifacts (§14). Empty unless
  // ServerConfig::trace_requests; NOT part of digest().
  std::vector<RequestEvent> request_events;    // causal order
  std::vector<LaneExecution> lane_executions;  // dispatch order
  std::vector<std::string> lane_names;         // "tier/rN", lane order
  // Per-request energy attribution; always populated.
  obs::AttributionLedger ledger;

  // Order-sensitive CRC over every response's (id, tier, completion,
  // output bytes) and every health transition — the replay-identity
  // fingerprint compared across thread counts by the determinism suite.
  std::uint32_t digest() const;
};

json::Value serve_stats_to_json(const ServeStats& stats);

class Server {
 public:
  // The pool outlives the server; tier 0 must be the most accurate.
  Server(ReplicaPool& pool, ServerConfig config);

  // Replays `trace` to completion (or through shutdown drain) and
  // returns every response plus aggregate statistics. Deterministic:
  // same trace + config + pool => identical result bytes. Conservation
  // is checked on exit: admitted == served + expired_in_queue + failed.
  ServeResult run_trace(const ArrivalTrace& trace);

 private:
  ReplicaPool& pool_;
  ServerConfig config_;
};

}  // namespace qnn::serve
