// Request-scoped causal tracing for the serving stack (DESIGN.md §14).
//
// One RequestTracer per run_trace() call collects two append-only logs:
//
//   * RequestEvent — every lifecycle edge every request crosses
//     (arrival, admission verdict, tier assignment, batch close, lane
//     dispatch, watchdog strike, retry/redirect hop, rescrub,
//     completion/rejection), stamped with the virtual tick it happened
//     at. The vector index IS the causal sequence number: the event
//     loop is serial, so append order is causal order and the log
//     replays byte-identically at any worker-thread count.
//   * LaneExecution — one record per forward pass a lane ran, with its
//     outcome (published / doomed by the watchdog / discarded by the
//     corruption audit / crashed), feeding the per-lane chrome-trace
//     view.
//
// Tracing is per-run opt-in (ServerConfig::trace_requests). A disabled
// tracer mints null TraceContexts, every record() is a no-op, and —
// because nothing here feeds back into scheduling — tracing on == off
// leaves response bytes and ServeResult::digest() bit-identical.
//
// Exporters: JSONL (one event per line, the grep-able audit log) and a
// chrome://tracing view with one track per executor lane plus a
// frontend track for admission-boundary events.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "serve/health.h"
#include "serve/request.h"
#include "util/json.h"

namespace qnn::serve {

// One causal event. `request_id` is -1 for lane-scoped events
// (kRescrub, kHealth). `detail`/`detail2` are kind-specific (see
// RequestEventKind); -1 means unused.
struct RequestEvent {
  Tick tick = 0;
  std::int64_t request_id = -1;
  RequestEventKind kind = RequestEventKind::kArrival;
  int tier = -1;
  int lane = -1;
  int attempt = 0;
  std::int64_t detail = -1;
  std::int64_t detail2 = -1;

  bool operator==(const RequestEvent&) const = default;
};

// One forward pass on one lane, with the fate of its result.
struct LaneExecution {
  enum class Outcome {
    kPublished = 0,       // result shipped as responses
    kDoomed,              // watchdog condemned it; result discarded
    kDiscardedCorrupt,    // completion audit discarded a tainted result
    kCrashed,             // the lane died mid-execution
  };

  int lane = -1;
  int tier = 0;
  int replica = 0;
  int attempt = 1;
  Tick dispatch = 0;
  Tick completion = 0;  // actual end (crash ends a wedged run early)
  std::int64_t batch_n = 0;
  double energy_pj = 0.0;  // whole-batch charge (batch_n images)
  Outcome outcome = Outcome::kPublished;
  std::vector<std::int64_t> request_ids;  // batch-row order

  bool operator==(const LaneExecution&) const = default;
};

const char* lane_outcome_name(LaneExecution::Outcome o);

class RequestTracer {
 public:
  explicit RequestTracer(bool enabled = false) : enabled_(enabled) {}

  RequestTracer(const RequestTracer&) = delete;
  RequestTracer& operator=(const RequestTracer&) = delete;

  bool enabled() const { return enabled_; }

  // Context carried by a request; null-tracer (inert) when disabled.
  TraceContext mint(std::int64_t request_id) {
    return TraceContext{request_id, enabled_ ? this : nullptr};
  }

  // Appends one event (no-op when disabled). Lane-scoped events pass
  // request_id = -1.
  void record(Tick tick, std::int64_t request_id, RequestEventKind kind,
              int tier = -1, int lane = -1, int attempt = 0,
              std::int64_t detail = -1, std::int64_t detail2 = -1);

  // Opens a LaneExecution record at dispatch; returns its index (or
  // kNoExecution when disabled) so the executor can close it with the
  // actual outcome at retirement/crash time.
  static constexpr std::size_t kNoExecution = static_cast<std::size_t>(-1);
  std::size_t begin_execution(LaneExecution e);
  void finish_execution(std::size_t index, Tick completion,
                        LaneExecution::Outcome outcome);

  const std::vector<RequestEvent>& events() const { return events_; }
  const std::vector<LaneExecution>& executions() const { return executions_; }
  std::vector<RequestEvent> take_events() { return std::move(events_); }
  std::vector<LaneExecution> take_executions() {
    return std::move(executions_);
  }

 private:
  bool enabled_ = false;
  std::vector<RequestEvent> events_;
  std::vector<LaneExecution> executions_;
};

// --- exporters ----------------------------------------------------------

// One event as a flat JSON object (stable key order; `seq` is the
// caller-provided causal sequence number). Health events additionally
// carry human-readable reason/state names.
json::Value request_event_to_json(const RequestEvent& e, std::int64_t seq);

// The whole log as JSONL: one compact JSON object per line, newline-
// terminated — the per-request audit artifact uploaded by CI.
std::string request_events_to_jsonl(const std::vector<RequestEvent>& events);
void write_request_events_jsonl(const std::string& path,
                                const std::vector<RequestEvent>& events);

// chrome://tracing document with one track (tid) per executor lane:
// an "X" span per LaneExecution named by its outcome, instant markers
// for health transitions on the lane that took them, and a final
// frontend track with reject/expire/fail/batch-close instants.
// `lane_names` labels the tracks (lane index order).
json::Value lane_trace_to_json(const std::vector<LaneExecution>& executions,
                               const std::vector<HealthTransition>& health_log,
                               const std::vector<RequestEvent>& events,
                               const std::vector<std::string>& lane_names);
void write_lane_chrome_trace(const std::string& path,
                             const std::vector<LaneExecution>& executions,
                             const std::vector<HealthTransition>& health_log,
                             const std::vector<RequestEvent>& events,
                             const std::vector<std::string>& lane_names);

}  // namespace qnn::serve
