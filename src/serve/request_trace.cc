#include "serve/request_trace.h"

#include <utility>

#include "util/check.h"
#include "util/fileio.h"

namespace qnn::serve {

const char* request_event_name(RequestEventKind k) {
  switch (k) {
    case RequestEventKind::kArrival:    return "arrival";
    case RequestEventKind::kTierAssign: return "tier_assign";
    case RequestEventKind::kAdmit:      return "admit";
    case RequestEventKind::kReject:     return "reject";
    case RequestEventKind::kBatchClose: return "batch_close";
    case RequestEventKind::kExpire:     return "expire";
    case RequestEventKind::kDispatch:   return "dispatch";
    case RequestEventKind::kHang:       return "hang";
    case RequestEventKind::kCorrupt:    return "corrupt";
    case RequestEventKind::kCrash:      return "crash";
    case RequestEventKind::kRetry:      return "retry";
    case RequestEventKind::kRedirect:   return "redirect";
    case RequestEventKind::kRescrub:    return "rescrub";
    case RequestEventKind::kHealth:     return "health";
    case RequestEventKind::kComplete:   return "complete";
    case RequestEventKind::kFail:       return "fail";
  }
  return "?";
}

const char* lane_outcome_name(LaneExecution::Outcome o) {
  switch (o) {
    case LaneExecution::Outcome::kPublished:        return "published";
    case LaneExecution::Outcome::kDoomed:           return "doomed";
    case LaneExecution::Outcome::kDiscardedCorrupt: return "discarded_corrupt";
    case LaneExecution::Outcome::kCrashed:          return "crashed";
  }
  return "?";
}

void TraceContext::record(Tick tick, RequestEventKind kind, int tier,
                          int lane, int attempt, std::int64_t detail) const {
  if (tracer == nullptr) return;
  tracer->record(tick, request_id, kind, tier, lane, attempt, detail);
}

void RequestTracer::record(Tick tick, std::int64_t request_id,
                           RequestEventKind kind, int tier, int lane,
                           int attempt, std::int64_t detail,
                           std::int64_t detail2) {
  if (!enabled_) return;
  events_.push_back(RequestEvent{tick, request_id, kind, tier, lane, attempt,
                                 detail, detail2});
}

std::size_t RequestTracer::begin_execution(LaneExecution e) {
  if (!enabled_) return kNoExecution;
  executions_.push_back(std::move(e));
  return executions_.size() - 1;
}

void RequestTracer::finish_execution(std::size_t index, Tick completion,
                                     LaneExecution::Outcome outcome) {
  if (!enabled_ || index == kNoExecution) return;
  QNN_CHECK_MSG(index < executions_.size(),
                "finish_execution on unknown record " << index);
  executions_[index].completion = completion;
  executions_[index].outcome = outcome;
}

json::Value request_event_to_json(const RequestEvent& e, std::int64_t seq) {
  json::Value v = json::Value::object();
  v.set("seq", seq);
  v.set("tick", e.tick);
  v.set("request", e.request_id);
  v.set("event", request_event_name(e.kind));
  v.set("tier", static_cast<std::int64_t>(e.tier));
  v.set("lane", static_cast<std::int64_t>(e.lane));
  v.set("attempt", static_cast<std::int64_t>(e.attempt));
  v.set("detail", e.detail);
  // Kind-specific decodes so the JSONL is readable without the enum
  // tables at hand.
  if (e.kind == RequestEventKind::kReject && e.detail >= 0) {
    v.set("reason", reject_reason_name(static_cast<RejectReason>(e.detail)));
  }
  if (e.kind == RequestEventKind::kHealth) {
    if (e.detail >= 0) {
      v.set("reason",
            health_reason_name(static_cast<HealthReason>(e.detail)));
    }
    if (e.detail2 >= 0) {
      v.set("state", lane_state_name(static_cast<LaneState>(e.detail2)));
    }
  }
  return v;
}

std::string request_events_to_jsonl(const std::vector<RequestEvent>& events) {
  std::string out;
  for (std::size_t i = 0; i < events.size(); ++i) {
    out += request_event_to_json(events[i], static_cast<std::int64_t>(i))
               .dump();
    out += '\n';
  }
  return out;
}

void write_request_events_jsonl(const std::string& path,
                                const std::vector<RequestEvent>& events) {
  write_file_atomic(path, request_events_to_jsonl(events));
}

namespace {

json::Value thread_meta(int tid, const std::string& name) {
  json::Value meta = json::Value::object();
  meta.set("name", "thread_name");
  meta.set("ph", "M");
  meta.set("pid", 1);
  meta.set("tid", tid);
  json::Value args = json::Value::object();
  args.set("name", name);
  meta.set("args", std::move(args));
  return meta;
}

json::Value instant(int tid, Tick tick, const std::string& name) {
  json::Value e = json::Value::object();
  e.set("name", name);
  e.set("cat", "serve");
  e.set("ph", "i");
  e.set("s", "t");  // thread-scoped instant
  e.set("pid", 1);
  e.set("tid", tid);
  e.set("ts", tick);
  return e;
}

}  // namespace

json::Value lane_trace_to_json(const std::vector<LaneExecution>& executions,
                               const std::vector<HealthTransition>& health_log,
                               const std::vector<RequestEvent>& events,
                               const std::vector<std::string>& lane_names) {
  json::Value out_events = json::Value::array();
  const int frontend_tid = static_cast<int>(lane_names.size());
  for (std::size_t i = 0; i < lane_names.size(); ++i) {
    out_events.push_back(
        thread_meta(static_cast<int>(i),
                    "lane " + std::to_string(i) + " (" + lane_names[i] + ")"));
  }
  out_events.push_back(thread_meta(frontend_tid, "frontend/admission"));

  // One complete span per execution, named by its outcome, with the
  // batch composition and attributed energy in args. Virtual ticks map
  // onto the trace's microsecond axis 1:1.
  for (const LaneExecution& ex : executions) {
    json::Value e = json::Value::object();
    e.set("name", std::string("exec:") + lane_outcome_name(ex.outcome));
    e.set("cat", "serve");
    e.set("ph", "X");
    e.set("pid", 1);
    e.set("tid", ex.lane);
    e.set("ts", ex.dispatch);
    e.set("dur", ex.completion - ex.dispatch);
    json::Value args = json::Value::object();
    args.set("tier", static_cast<std::int64_t>(ex.tier));
    args.set("replica", static_cast<std::int64_t>(ex.replica));
    args.set("attempt", static_cast<std::int64_t>(ex.attempt));
    args.set("batch_n", ex.batch_n);
    args.set("energy_pj", ex.energy_pj);
    args.set("outcome", lane_outcome_name(ex.outcome));
    json::Value ids = json::Value::array();
    for (const std::int64_t id : ex.request_ids) ids.push_back(id);
    args.set("requests", std::move(ids));
    e.set("args", std::move(args));
    out_events.push_back(std::move(e));
  }

  // Health transitions as instants on the lane that took them.
  for (const HealthTransition& t : health_log) {
    out_events.push_back(
        instant(t.lane, t.tick,
                std::string("health:") + lane_state_name(t.to) + " (" +
                    health_reason_name(t.reason) + ")"));
  }

  // Admission-boundary outcomes on the frontend track: the events that
  // end a request anywhere other than a published execution, plus batch
  // closes so queue pressure is visible on the timeline.
  for (const RequestEvent& e : events) {
    const bool frontend = e.kind == RequestEventKind::kReject ||
                          e.kind == RequestEventKind::kExpire ||
                          e.kind == RequestEventKind::kFail ||
                          e.kind == RequestEventKind::kBatchClose;
    if (!frontend) continue;
    json::Value ev =
        instant(frontend_tid, e.tick,
                std::string(request_event_name(e.kind)) + ":" +
                    std::to_string(e.request_id));
    out_events.push_back(std::move(ev));
  }

  json::Value root = json::Value::object();
  root.set("displayTimeUnit", "ms");
  root.set("traceEvents", std::move(out_events));
  return root;
}

void write_lane_chrome_trace(const std::string& path,
                             const std::vector<LaneExecution>& executions,
                             const std::vector<HealthTransition>& health_log,
                             const std::vector<RequestEvent>& events,
                             const std::vector<std::string>& lane_names) {
  write_file_atomic(path, lane_trace_to_json(executions, health_log, events,
                                             lane_names)
                              .dump() +
                              "\n");
}

}  // namespace qnn::serve
