// Deadline-aware dynamic batching (DESIGN.md §12).
//
// Requests wait in per-tier pending lists (batches never mix precision
// tiers — each tier runs on its own replica). A tier's batch closes on
// whichever comes first:
//   * max-batch:      max_batch requests are pending, or
//   * batch-window:   `batch_window` ticks have elapsed since the tier's
//                     OLDEST pending request was added (window 0 closes
//                     on the same tick the request arrives).
// Before any close, requests whose deadline has already passed are
// dropped and handed back through `expired` — executing them would burn
// service capacity on work that can no longer meet its contract.
//
// Pure virtual-time data structure: poll(now) is a deterministic
// function of the add() history, so batch composition replays
// identically at any thread count.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "serve/request.h"

namespace qnn::serve {

struct BatcherConfig {
  int max_batch = 8;
  Tick batch_window = 0;
};

struct Batch {
  int tier = 0;
  Tick close_tick = 0;  // when the batcher closed it (queue wait ends)
  std::vector<Request> requests;  // batch-row order
};

class DynamicBatcher {
 public:
  DynamicBatcher(const BatcherConfig& config, int num_tiers);

  // Adds an admitted request to its tier's pending list. `now` starts
  // the tier's batch window if the list was empty.
  void add(Request r, Tick now);

  // Drops expired pending requests into `expired`, then closes every
  // batch due at `now` (max-batch or window rule). Closed batches are
  // returned in tier order, oldest first within a tier.
  std::vector<Batch> poll(Tick now, std::vector<Request>* expired);

  // Shutdown drain: drops expired requests, then closes ALL remaining
  // pending work into max_batch-sized batches regardless of the window —
  // in-flight requests are finished, never abandoned.
  std::vector<Batch> flush(Tick now, std::vector<Request>* expired);

  // Earliest future tick at which some tier's window rule comes due, or
  // kNoTick when nothing is pending. Drives the replay event loop.
  static constexpr Tick kNoTick = -1;
  Tick next_window_tick() const;

  std::size_t pending_total() const;
  bool empty() const { return pending_total() == 0; }

 private:
  struct Pending {
    Request request;
    Tick enqueued = 0;
  };

  void drop_expired(Tick now, std::vector<Request>* expired);
  Batch close_front(int tier, std::size_t count, Tick now);

  BatcherConfig config_;
  std::vector<std::deque<Pending>> pending_;  // one list per tier
};

}  // namespace qnn::serve
