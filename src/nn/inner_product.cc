#include "nn/inner_product.h"

#include <cmath>

#include "obs/trace.h"
#include "protect/abft.h"
#include "tensor/gemm.h"
#include "util/check.h"
#include "util/thread_pool.h"

namespace qnn::nn {

InnerProduct::InnerProduct(std::int64_t in_features,
                           std::int64_t out_features, bool bias)
    : in_features_(in_features),
      out_features_(out_features),
      weight_("w", Shape{out_features, in_features}),
      bias_(bias ? Param("b", Shape{out_features}) : Param()) {
  QNN_CHECK(in_features > 0 && out_features > 0);
}

std::int64_t InnerProduct::flat_features(const Shape& in) const {
  QNN_CHECK(in.rank() >= 2);
  const std::int64_t f = in.count_from(1);
  QNN_CHECK_MSG(f == in_features_, "inner_product input "
                                       << in.to_string() << " flattens to "
                                       << f << ", expected "
                                       << in_features_);
  return f;
}

Shape InnerProduct::output_shape(const Shape& in) const {
  flat_features(in);
  return Shape{in[0], out_features_};
}

Tensor InnerProduct::forward(const Tensor& in) {
  QNN_SPAN_N("inner_product_forward", "layer", in.shape()[0]);
  const std::int64_t n = in.shape()[0];
  const std::int64_t f = flat_features(in.shape());
  cached_orig_shape_ = in.shape();
  cached_in_ = in.reshaped(Shape{n, f});

  Tensor out(Shape{n, out_features_});
  // out[N, Out] = x[N, In] * W^T (W stored [Out, In]), bias folded into
  // the gemm epilogue. Guarded: ABFT-verified when a protect::AbftScope
  // is active, the plain kernel otherwise. This is the canonical tall-K
  // K-sharded shape (M = batch, K = in_features), so the hoisted
  // scratch carries the weight transpose and the chunk partials.
  protect::gemm_bt_col_bias_guarded(
      n, out_features_, f, cached_in_.data(), weight_.value.data(),
      out.data(), bias_.value.empty() ? nullptr : bias_.value.data(),
      &fwd_scratch_);
  return out;
}

Tensor InnerProduct::backward(const Tensor& grad_out) {
  QNN_CHECK_MSG(!cached_in_.empty(), "backward before forward");
  const std::int64_t n = cached_in_.shape()[0];
  QNN_CHECK(grad_out.shape() == Shape({n, out_features_}));

  // dW[Out, In] += gO^T[Out, N] * x[N, In]; gemm_at overwrites, so go
  // through a persistent scratch tensor and accumulate.
  if (dw_scratch_.empty()) dw_scratch_ = Tensor(weight_.grad.shape());
  gemm_at(out_features_, in_features_, n, grad_out.data(),
          cached_in_.data(), dw_scratch_.data(), &bwd_scratch_);
  weight_.grad.add(dw_scratch_);

  if (!bias_.value.empty()) {
    // Each output feature accumulates its own double partial over the
    // batch — disjoint writes, order-independent of the sharding. A
    // feature costs one strided pass over the batch.
    parallel_for_shards(
        out_features_, kReductionShards, shard_grain(2 * n),
        [&](std::size_t, std::int64_t begin, std::int64_t end) {
          for (std::int64_t o = begin; o < end; ++o) {
            double acc = 0.0;
            for (std::int64_t s = 0; s < n; ++s) acc += grad_out.at2(s, o);
            bias_.grad[o] += static_cast<float>(acc);
          }
        });
  }

  // dX[N, In] = gO[N, Out] * W[Out, In]
  Tensor grad_flat(Shape{n, in_features_});
  gemm(n, in_features_, out_features_, grad_out.data(),
       weight_.value.data(), grad_flat.data(), &bwd_scratch_);
  return grad_flat.reshaped(cached_orig_shape_);
}

std::vector<Param*> InnerProduct::params() {
  std::vector<Param*> p{&weight_};
  if (!bias_.value.empty()) p.push_back(&bias_);
  return p;
}

LayerDesc InnerProduct::describe(const Shape& in) const {
  LayerDesc d = Layer::describe(in);
  d.fan_in = in_features_;
  d.macs = in_features_ * out_features_;
  d.weights = weight_.count();
  d.biases = bias_.value.empty() ? 0 : bias_.value.count();
  return d;
}

void InnerProduct::init_weights(Rng& rng) {
  const double bound = std::sqrt(6.0 / static_cast<double>(in_features_));
  weight_.value.fill_uniform(rng, static_cast<float>(-bound),
                             static_cast<float>(bound));
  if (!bias_.value.empty()) bias_.value.zero();
}

}  // namespace qnn::nn
