#include "nn/metrics.h"

#include <algorithm>
#include <numeric>
#include <sstream>

#include "nn/loss.h"
#include "util/check.h"
#include "util/thread_pool.h"

namespace qnn::nn {

int argmax_row(const Tensor& logits, std::int64_t row) {
  QNN_CHECK(logits.shape().rank() == 2);
  QNN_CHECK(row >= 0 && row < logits.shape()[0]);
  const std::int64_t classes = logits.shape()[1];
  QNN_CHECK(classes > 0);
  const float* r = logits.data() + row * classes;
  int best = 0;
  for (std::int64_t c = 1; c < classes; ++c)
    if (r[c] > r[best]) best = static_cast<int>(c);
  return best;
}

ConfusionMatrix::ConfusionMatrix(int num_classes)
    : num_classes_(num_classes),
      cells_(static_cast<std::size_t>(num_classes) * num_classes, 0) {
  QNN_CHECK(num_classes > 0);
}

void ConfusionMatrix::add(int actual, int predicted) {
  QNN_CHECK(actual >= 0 && actual < num_classes_);
  QNN_CHECK(predicted >= 0 && predicted < num_classes_);
  ++cells_[static_cast<std::size_t>(actual) * num_classes_ + predicted];
  ++total_;
}

std::int64_t ConfusionMatrix::count(int actual, int predicted) const {
  QNN_CHECK(actual >= 0 && actual < num_classes_);
  QNN_CHECK(predicted >= 0 && predicted < num_classes_);
  return cells_[static_cast<std::size_t>(actual) * num_classes_ + predicted];
}

double ConfusionMatrix::accuracy() const {
  if (total_ == 0) return 0.0;
  std::int64_t diag = 0;
  for (int c = 0; c < num_classes_; ++c) diag += count(c, c);
  return 100.0 * static_cast<double>(diag) / static_cast<double>(total_);
}

double ConfusionMatrix::per_class_accuracy(int label) const {
  std::int64_t row = 0;
  for (int p = 0; p < num_classes_; ++p) row += count(label, p);
  if (row == 0) return 100.0;
  return 100.0 * static_cast<double>(count(label, label)) /
         static_cast<double>(row);
}

double ConfusionMatrix::balanced_accuracy() const {
  double sum = 0.0;
  for (int c = 0; c < num_classes_; ++c) sum += per_class_accuracy(c);
  return sum / num_classes_;
}

std::string ConfusionMatrix::to_string() const {
  std::ostringstream os;
  os << "actual\\pred";
  for (int p = 0; p < num_classes_; ++p) os << '\t' << p;
  os << '\n';
  for (int a = 0; a < num_classes_; ++a) {
    os << a;
    for (int p = 0; p < num_classes_; ++p) os << '\t' << count(a, p);
    os << '\n';
  }
  return os.str();
}

EvalMetrics evaluate_metrics(Model& model, const data::Dataset& d, int k,
                             std::int64_t batch_size) {
  QNN_CHECK(d.size() > 0);
  QNN_CHECK(k >= 1 && k <= d.num_classes);
  model.set_training_mode(false);
  EvalMetrics m{ConfusionMatrix(d.num_classes)};
  std::int64_t topk_hits = 0;
  double loss_sum = 0.0;
  std::int64_t batches = 0;

  for (std::int64_t first = 0; first < d.size(); first += batch_size) {
    const std::int64_t count = std::min(batch_size, d.size() - first);
    const Tensor x = data::batch_images(d, first, count);
    const auto y = data::batch_labels(d, first, count);
    const Tensor logits = model.forward(x);
    const LossResult lr = softmax_cross_entropy(logits, y);
    loss_sum += lr.loss;
    ++batches;

    const std::int64_t classes = logits.shape()[1];
    // Confusion cells can collide across samples, so those adds stay on
    // this thread; the top-k partial sorts shard with per-shard scratch
    // and counts merged in shard order.
    for (std::int64_t s = 0; s < count; ++s)
      m.confusion.add(y[static_cast<std::size_t>(s)],
                      lr.predictions[static_cast<std::size_t>(s)]);
    const std::vector<Shard> shards =
        make_shards(count, kReductionShards, shard_grain(8 * classes));
    std::vector<Padded<std::int64_t>> partial(shards.size());
    parallel_run(
        static_cast<std::int64_t>(shards.size()), [&](std::int64_t si) {
          std::vector<int> order(static_cast<std::size_t>(classes));
          std::int64_t hits = 0;
          const Shard& sh = shards[static_cast<std::size_t>(si)];
          for (std::int64_t s = sh.begin; s < sh.end; ++s) {
            const float* row = logits.data() + s * classes;
            std::iota(order.begin(), order.end(), 0);
            std::partial_sort(order.begin(), order.begin() + k, order.end(),
                              [&](int a, int b) { return row[a] > row[b]; });
            for (int j = 0; j < k; ++j)
              if (order[static_cast<std::size_t>(j)] ==
                  y[static_cast<std::size_t>(s)]) {
                ++hits;
                break;
              }
          }
          partial[static_cast<std::size_t>(si)].v = hits;
        });
    for (const Padded<std::int64_t>& hits : partial) topk_hits += hits.v;
  }
  m.top1 = m.confusion.accuracy();
  m.topk = 100.0 * static_cast<double>(topk_hits) /
           static_cast<double>(d.size());
  m.mean_loss = loss_sum / static_cast<double>(batches);
  return m;
}

}  // namespace qnn::nn
