// Stochastic gradient descent with momentum and L2 weight decay —
// the paper's training recipe (standard Caffe SGD).
#pragma once

#include <vector>

#include "nn/param.h"

namespace qnn::nn {

struct SgdConfig {
  double learning_rate = 0.01;
  double momentum = 0.9;
  double weight_decay = 1e-4;
  // Multiplies learning_rate every `step_epochs` epochs (<=0 disables).
  double gamma = 0.5;
  int step_epochs = 0;
  // Global gradient-norm clipping (<=0 disables). Large-fan-in layers
  // (ConvNet's 512-channel 7×7 stage) otherwise blow up in the first
  // few updates and leave the ReLUs dead.
  double clip_grad_norm = 5.0;
};

class Sgd {
 public:
  explicit Sgd(const SgdConfig& config) : config_(config) {}

  // Applies one update: v = m*v - lr*(g + wd*w); w += v.
  // Gradients are NOT cleared; call zero_grad afterwards.
  void step(const std::vector<Param*>& params);

  // Epoch-step learning-rate decay.
  void on_epoch_end(int epoch);

  double learning_rate() const { return lr_override_ >= 0 ? lr_override_ : current_lr_; }
  void set_learning_rate(double lr) { lr_override_ = lr; }

  static void zero_grad(const std::vector<Param*>& params);

  // Rescales gradients so their global L2 norm is at most max_norm.
  static void clip_gradients(const std::vector<Param*>& params,
                             double max_norm);

 private:
  SgdConfig config_;
  double current_lr_ = -1;  // initialized on first step
  double lr_override_ = -1;
  // Momentum buffers keyed by parameter identity (index into the list);
  // stable because the trainer always passes the same param list.
  std::vector<Tensor> velocity_;
};

}  // namespace qnn::nn
