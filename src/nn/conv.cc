#include "nn/conv.h"

#include <cmath>
#include <cstring>
#include <vector>

#include "obs/trace.h"
#include "protect/abft.h"
#include "tensor/gemm.h"
#include "util/check.h"
#include "util/thread_pool.h"

namespace qnn::nn {
namespace {

void ensure_scratch(std::vector<std::vector<float>>& bufs,
                    std::size_t shards, std::size_t elems) {
  if (bufs.size() < shards) bufs.resize(shards);
  for (std::size_t i = 0; i < shards; ++i)
    if (bufs[i].size() < elems) bufs[i].resize(elems);
}

}  // namespace

Conv2d::Conv2d(std::int64_t in_channels, const ConvSpec& spec)
    : in_channels_(in_channels),
      spec_(spec),
      weight_("w", Shape{spec.out_channels, in_channels, spec.kernel,
                         spec.kernel}),
      bias_(spec.bias ? Param("b", Shape{spec.out_channels}) : Param()) {
  QNN_CHECK(in_channels > 0 && spec.out_channels > 0 && spec.kernel > 0);
  QNN_CHECK(spec.stride > 0 && spec.pad >= 0);
}

ConvGeometry Conv2d::geometry(const Shape& in) const {
  QNN_CHECK_MSG(in.rank() == 4 && in.c() == in_channels_,
                "conv input " << in.to_string() << " expects C="
                              << in_channels_);
  ConvGeometry g;
  g.in_c = in.c();
  g.in_h = in.h();
  g.in_w = in.w();
  g.kernel_h = g.kernel_w = spec_.kernel;
  g.stride_h = g.stride_w = spec_.stride;
  g.pad_h = g.pad_w = spec_.pad;
  QNN_CHECK_MSG(g.out_h() > 0 && g.out_w() > 0,
                "conv output collapses for input " << in.to_string());
  return g;
}

Shape Conv2d::output_shape(const Shape& in) const {
  const ConvGeometry g = geometry(in);
  return Shape{in.n(), spec_.out_channels, g.out_h(), g.out_w()};
}

Tensor Conv2d::forward(const Tensor& in) {
  QNN_SPAN_N("conv_forward", "layer", in.shape().n());
  const ConvGeometry g = geometry(in.shape());
  const std::int64_t n = in.shape().n();
  const std::int64_t rows = g.col_rows();   // Cin*K*K
  const std::int64_t cols = g.col_cols();   // OH*OW
  const std::int64_t cout = spec_.out_channels;

  Tensor out(Shape{n, cout, g.out_h(), g.out_w()});
  const std::int64_t in_sample = in.shape().count_from(1);
  const std::int64_t out_sample = cout * cols;
  const float* bias = bias_.value.empty() ? nullptr : bias_.value.data();

  const std::vector<Shard> shards = make_shards(n, kReductionShards);
  ensure_scratch(colbuf_, shards.size(),
                 static_cast<std::size_t>(rows * cols));
  if (gemm_scratch_.size() < shards.size())
    gemm_scratch_.resize(shards.size());
  // Samples write disjoint output rows, so sharding the batch is
  // bit-deterministic; each shard reuses its own im2col and gemm
  // scratch (rows > kGemmKChunk makes the per-sample product K-chunked).
  parallel_run(static_cast<std::int64_t>(shards.size()),
               [&](std::int64_t si) {
                 const std::size_t u = static_cast<std::size_t>(si);
                 float* colbuf = colbuf_[u].data();
                 const Shard& sh = shards[u];
                 for (std::int64_t s = sh.begin; s < sh.end; ++s) {
                   im2col(g, in.data() + s * in_sample, colbuf);
                   // out[Cout, OHW] = W[Cout, rows] * cols[rows, OHW],
                   // bias folded into the gemm epilogue. The guarded
                   // entry adds ABFT checksums when a protect::AbftScope
                   // is active (inherited via the pool task context);
                   // otherwise it is the plain kernel.
                   protect::gemm_row_bias_guarded(
                       cout, cols, rows, weight_.value.data(), colbuf,
                       out.data() + s * out_sample, bias,
                       &gemm_scratch_[u]);
                 }
               });
  cached_in_ = in;
  return out;
}

Tensor Conv2d::backward(const Tensor& grad_out) {
  QNN_CHECK_MSG(!cached_in_.empty(), "backward before forward");
  const Tensor& in = cached_in_;
  const ConvGeometry g = geometry(in.shape());
  const std::int64_t n = in.shape().n();
  const std::int64_t rows = g.col_rows();
  const std::int64_t cols = g.col_cols();
  const std::int64_t cout = spec_.out_channels;
  QNN_CHECK(grad_out.shape() == output_shape(in.shape()));

  Tensor grad_in(in.shape());
  const std::int64_t in_sample = in.shape().count_from(1);
  const std::int64_t out_sample = cout * cols;
  const std::size_t wcount = static_cast<std::size_t>(weight_.count());
  const bool has_bias = !bias_.value.empty();

  const std::vector<Shard> shards = make_shards(n, kReductionShards);
  ensure_scratch(colbuf_, shards.size(),
                 static_cast<std::size_t>(rows * cols));
  ensure_scratch(gcol_, shards.size(), static_cast<std::size_t>(rows * cols));
  ensure_scratch(dw_, shards.size(), wcount);
  if (gemm_scratch_.size() < shards.size())
    gemm_scratch_.resize(shards.size());
  if (db_.size() < shards.size()) db_.resize(shards.size());
  for (std::size_t i = 0; i < shards.size(); ++i)
    if (db_[i].size() < static_cast<std::size_t>(cout))
      db_[i].resize(static_cast<std::size_t>(cout));

  // Each shard accumulates weight/bias gradients into its own partials;
  // grad_in writes are disjoint per sample. Partials merge below in
  // shard-index order, so the reduction is thread-count independent.
  parallel_run(
      static_cast<std::int64_t>(shards.size()), [&](std::int64_t si) {
        const std::size_t u = static_cast<std::size_t>(si);
        float* colbuf = colbuf_[u].data();
        float* gcol = gcol_[u].data();
        float* dw = dw_[u].data();
        double* db = db_[u].data();
        std::memset(dw, 0, sizeof(float) * wcount);
        for (std::int64_t c = 0; c < cout; ++c) db[c] = 0.0;
        const Shard& sh = shards[u];
        for (std::int64_t s = sh.begin; s < sh.end; ++s) {
          const float* go = grad_out.data() + s * out_sample;
          // dW[Cout, rows] += gO[Cout, cols] * cols^T
          im2col(g, in.data() + s * in_sample, colbuf);
          gemm_bt_accumulate(cout, rows, cols, go, colbuf, dw,
                             &gemm_scratch_[u]);
          // db[c] += sum of gO over spatial positions
          if (has_bias) {
            for (std::int64_t c = 0; c < cout; ++c) {
              const float* src = go + c * cols;
              for (std::int64_t i = 0; i < cols; ++i) db[c] += src[i];
            }
          }
          // dcols[rows, cols] = W^T[rows, Cout] * gO[Cout, cols]
          gemm_at(rows, cols, cout, weight_.value.data(), go, gcol,
                  &gemm_scratch_[u]);
          col2im(g, gcol, grad_in.data() + s * in_sample);
        }
      });

  for (std::size_t si = 0; si < shards.size(); ++si) {
    const float* dw = dw_[si].data();
    for (std::size_t w = 0; w < wcount; ++w) weight_.grad[w] += dw[w];
    if (has_bias) {
      for (std::int64_t c = 0; c < cout; ++c)
        bias_.grad[c] += static_cast<float>(db_[si][c]);
    }
  }
  return grad_in;
}

std::vector<Param*> Conv2d::params() {
  std::vector<Param*> p{&weight_};
  if (!bias_.value.empty()) p.push_back(&bias_);
  return p;
}

LayerDesc Conv2d::describe(const Shape& in) const {
  LayerDesc d = Layer::describe(in);
  const ConvGeometry g = geometry(in);
  d.fan_in = g.col_rows();
  d.macs = d.fan_in * spec_.out_channels * g.col_cols();
  d.weights = weight_.count();
  d.biases = bias_.value.empty() ? 0 : bias_.value.count();
  return d;
}

void Conv2d::init_weights(Rng& rng) {
  const double fan_in =
      static_cast<double>(in_channels_ * spec_.kernel * spec_.kernel);
  const double bound = std::sqrt(6.0 / fan_in);  // He-uniform for ReLU nets
  weight_.value.fill_uniform(rng, static_cast<float>(-bound),
                             static_cast<float>(bound));
  if (!bias_.value.empty()) bias_.value.zero();
}

}  // namespace qnn::nn
