#include "nn/conv.h"

#include <cmath>
#include <vector>

#include "tensor/gemm.h"
#include "util/check.h"

namespace qnn::nn {

Conv2d::Conv2d(std::int64_t in_channels, const ConvSpec& spec)
    : in_channels_(in_channels),
      spec_(spec),
      weight_("w", Shape{spec.out_channels, in_channels, spec.kernel,
                         spec.kernel}),
      bias_(spec.bias ? Param("b", Shape{spec.out_channels}) : Param()) {
  QNN_CHECK(in_channels > 0 && spec.out_channels > 0 && spec.kernel > 0);
  QNN_CHECK(spec.stride > 0 && spec.pad >= 0);
}

ConvGeometry Conv2d::geometry(const Shape& in) const {
  QNN_CHECK_MSG(in.rank() == 4 && in.c() == in_channels_,
                "conv input " << in.to_string() << " expects C="
                              << in_channels_);
  ConvGeometry g;
  g.in_c = in.c();
  g.in_h = in.h();
  g.in_w = in.w();
  g.kernel_h = g.kernel_w = spec_.kernel;
  g.stride_h = g.stride_w = spec_.stride;
  g.pad_h = g.pad_w = spec_.pad;
  QNN_CHECK_MSG(g.out_h() > 0 && g.out_w() > 0,
                "conv output collapses for input " << in.to_string());
  return g;
}

Shape Conv2d::output_shape(const Shape& in) const {
  const ConvGeometry g = geometry(in);
  return Shape{in.n(), spec_.out_channels, g.out_h(), g.out_w()};
}

Tensor Conv2d::forward(const Tensor& in) {
  const ConvGeometry g = geometry(in.shape());
  const std::int64_t n = in.shape().n();
  const std::int64_t rows = g.col_rows();   // Cin*K*K
  const std::int64_t cols = g.col_cols();   // OH*OW
  const std::int64_t cout = spec_.out_channels;

  Tensor out(Shape{n, cout, g.out_h(), g.out_w()});
  std::vector<float> colbuf(static_cast<std::size_t>(rows * cols));
  const std::int64_t in_sample = in.shape().count_from(1);
  const std::int64_t out_sample = cout * cols;

  for (std::int64_t s = 0; s < n; ++s) {
    im2col(g, in.data() + s * in_sample, colbuf.data());
    // out[Cout, OHW] = W[Cout, rows] * cols[rows, OHW]
    gemm(cout, cols, rows, weight_.value.data(), colbuf.data(),
         out.data() + s * out_sample);
    if (!bias_.value.empty()) {
      for (std::int64_t c = 0; c < cout; ++c) {
        const float b = bias_.value[c];
        float* dst = out.data() + s * out_sample + c * cols;
        for (std::int64_t i = 0; i < cols; ++i) dst[i] += b;
      }
    }
  }
  cached_in_ = in;
  return out;
}

Tensor Conv2d::backward(const Tensor& grad_out) {
  QNN_CHECK_MSG(!cached_in_.empty(), "backward before forward");
  const Tensor& in = cached_in_;
  const ConvGeometry g = geometry(in.shape());
  const std::int64_t n = in.shape().n();
  const std::int64_t rows = g.col_rows();
  const std::int64_t cols = g.col_cols();
  const std::int64_t cout = spec_.out_channels;
  QNN_CHECK(grad_out.shape() == output_shape(in.shape()));

  Tensor grad_in(in.shape());
  std::vector<float> colbuf(static_cast<std::size_t>(rows * cols));
  std::vector<float> gcol(static_cast<std::size_t>(rows * cols));
  const std::int64_t in_sample = in.shape().count_from(1);
  const std::int64_t out_sample = cout * cols;

  for (std::int64_t s = 0; s < n; ++s) {
    const float* go = grad_out.data() + s * out_sample;
    // dW[Cout, rows] += gO[Cout, cols] * cols^T  (cols stored [rows, cols])
    im2col(g, in.data() + s * in_sample, colbuf.data());
    gemm_bt_accumulate(cout, rows, cols, go, colbuf.data(),
                       weight_.grad.data());
    // db[c] += sum of gO over spatial positions
    if (!bias_.value.empty()) {
      for (std::int64_t c = 0; c < cout; ++c) {
        double acc = 0.0;
        const float* src = go + c * cols;
        for (std::int64_t i = 0; i < cols; ++i) acc += src[i];
        bias_.grad[c] += static_cast<float>(acc);
      }
    }
    // dcols[rows, cols] = W^T[rows, Cout] * gO[Cout, cols]
    gemm_at(rows, cols, cout, weight_.value.data(), go, gcol.data());
    col2im(g, gcol.data(), grad_in.data() + s * in_sample);
  }
  return grad_in;
}

std::vector<Param*> Conv2d::params() {
  std::vector<Param*> p{&weight_};
  if (!bias_.value.empty()) p.push_back(&bias_);
  return p;
}

LayerDesc Conv2d::describe(const Shape& in) const {
  LayerDesc d = Layer::describe(in);
  const ConvGeometry g = geometry(in);
  d.fan_in = g.col_rows();
  d.macs = d.fan_in * spec_.out_channels * g.col_cols();
  d.weights = weight_.count();
  d.biases = bias_.value.empty() ? 0 : bias_.value.count();
  return d;
}

void Conv2d::init_weights(Rng& rng) {
  const double fan_in =
      static_cast<double>(in_channels_ * spec_.kernel * spec_.kernel);
  const double bound = std::sqrt(6.0 / fan_in);  // He-uniform for ReLU nets
  weight_.value.fill_uniform(rng, static_cast<float>(-bound),
                             static_cast<float>(bound));
  if (!bias_.value.empty()) bias_.value.zero();
}

}  // namespace qnn::nn
