#include "nn/serialize.h"

#include <cstring>
#include <fstream>
#include <sstream>

#include "util/check.h"

namespace qnn::nn {
namespace {

constexpr char kMagic[4] = {'Q', 'N', 'N', 'W'};
constexpr std::uint32_t kVersion = 1;

template <typename T>
void put(std::string& out, const T& v) {
  const char* p = reinterpret_cast<const char*>(&v);
  out.append(p, sizeof(T));
}

template <typename T>
T take(const std::string& in, std::size_t& pos) {
  QNN_CHECK_MSG(pos + sizeof(T) <= in.size(), "truncated snapshot");
  T v;
  std::memcpy(&v, in.data() + pos, sizeof(T));
  pos += sizeof(T);
  return v;
}

}  // namespace

std::string serialize_params(Network& net) {
  const auto params = net.trainable_params();
  std::string out;
  out.append(kMagic, sizeof kMagic);
  put(out, kVersion);
  put(out, static_cast<std::uint64_t>(params.size()));
  for (std::size_t pi = 0; pi < params.size(); ++pi) {
    const Param& p = *params[pi];
    // Disambiguate repeated "w"/"b" names with the parameter index.
    const std::string name = p.name + "#" + std::to_string(pi);
    put(out, static_cast<std::uint64_t>(name.size()));
    out.append(name);
    const auto& dims = p.value.shape().dims();
    put(out, static_cast<std::uint64_t>(dims.size()));
    for (std::int64_t d : dims) put(out, static_cast<std::uint64_t>(d));
    out.append(reinterpret_cast<const char*>(p.value.data()),
               sizeof(float) * static_cast<std::size_t>(p.value.count()));
  }
  return out;
}

void deserialize_params(Network& net, const std::string& bytes) {
  std::size_t pos = 0;
  QNN_CHECK_MSG(bytes.size() >= 4 &&
                    std::memcmp(bytes.data(), kMagic, 4) == 0,
                "not a QNNW snapshot");
  pos = 4;
  const auto version = take<std::uint32_t>(bytes, pos);
  QNN_CHECK_MSG(version == kVersion, "unsupported snapshot version "
                                         << version);
  const auto count = take<std::uint64_t>(bytes, pos);
  const auto params = net.trainable_params();
  QNN_CHECK_MSG(count == params.size(),
                "snapshot has " << count << " params, network has "
                                << params.size());
  for (std::size_t pi = 0; pi < params.size(); ++pi) {
    Param& p = *params[pi];
    const auto name_len = take<std::uint64_t>(bytes, pos);
    QNN_CHECK(pos + name_len <= bytes.size());
    const std::string name = bytes.substr(pos, name_len);
    pos += name_len;
    const std::string expected = p.name + "#" + std::to_string(pi);
    QNN_CHECK_MSG(name == expected, "snapshot param '"
                                        << name << "' does not match '"
                                        << expected << '\'');
    const auto rank = take<std::uint64_t>(bytes, pos);
    std::vector<std::int64_t> dims;
    for (std::uint64_t d = 0; d < rank; ++d)
      dims.push_back(static_cast<std::int64_t>(take<std::uint64_t>(bytes, pos)));
    QNN_CHECK_MSG(Shape(dims) == p.value.shape(),
                  "snapshot shape mismatch for " << name);
    const std::size_t nbytes =
        sizeof(float) * static_cast<std::size_t>(p.value.count());
    QNN_CHECK_MSG(pos + nbytes <= bytes.size(), "truncated snapshot data");
    std::memcpy(p.value.data(), bytes.data() + pos, nbytes);
    pos += nbytes;
  }
  QNN_CHECK_MSG(pos == bytes.size(), "trailing bytes in snapshot");
}

void save_params(Network& net, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  QNN_CHECK_MSG(out.good(), "cannot open " << path << " for writing");
  const std::string bytes = serialize_params(net);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  QNN_CHECK_MSG(out.good(), "write failed: " << path);
}

void load_params(Network& net, const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  QNN_CHECK_MSG(in.good(), "cannot open " << path);
  std::ostringstream ss;
  ss << in.rdbuf();
  deserialize_params(net, ss.str());
}

}  // namespace qnn::nn
