#include "nn/serialize.h"

#include <cstring>

#include "util/check.h"
#include "util/crc32.h"
#include "util/fileio.h"

namespace qnn::nn {
namespace {

constexpr char kMagic[4] = {'Q', 'N', 'N', 'W'};
// Version 2 adds the trailing CRC32; version 1 (no CRC) is still read.
constexpr std::uint32_t kVersion = 2;
constexpr std::uint32_t kOldestLoadableVersion = 1;

template <typename T>
void put(std::string& out, const T& v) {
  const char* p = reinterpret_cast<const char*>(&v);
  out.append(p, sizeof(T));
}

template <typename T>
T take(const std::string& in, std::size_t& pos, const char* what) {
  QNN_CHECK_MSG(pos + sizeof(T) <= in.size(),
                "truncated snapshot: ran out of bytes reading " << what
                    << " at offset " << pos << " (file has " << in.size()
                    << " bytes)");
  T v;
  std::memcpy(&v, in.data() + pos, sizeof(T));
  pos += sizeof(T);
  return v;
}

}  // namespace

std::string serialize_params(Network& net) {
  const auto params = net.trainable_params();
  std::string out;
  out.append(kMagic, sizeof kMagic);
  put(out, kVersion);
  put(out, static_cast<std::uint64_t>(params.size()));
  for (std::size_t pi = 0; pi < params.size(); ++pi) {
    const Param& p = *params[pi];
    // Disambiguate repeated "w"/"b" names with the parameter index.
    const std::string name = p.name + "#" + std::to_string(pi);
    put(out, static_cast<std::uint64_t>(name.size()));
    out.append(name);
    const auto& dims = p.value.shape().dims();
    put(out, static_cast<std::uint64_t>(dims.size()));
    for (std::int64_t d : dims) put(out, static_cast<std::uint64_t>(d));
    out.append(reinterpret_cast<const char*>(p.value.data()),
               sizeof(float) * static_cast<std::size_t>(p.value.count()));
  }
  put(out, crc32(out));
  return out;
}

void deserialize_params(Network& net, const std::string& bytes) {
  std::size_t pos = 0;
  QNN_CHECK_MSG(bytes.size() >= sizeof kMagic + sizeof(std::uint32_t),
                "not a QNNW snapshot: file is only " << bytes.size()
                    << " bytes");
  QNN_CHECK_MSG(std::memcmp(bytes.data(), kMagic, sizeof kMagic) == 0,
                "not a QNNW snapshot: bad magic");
  pos = sizeof kMagic;
  const auto version = take<std::uint32_t>(bytes, pos, "version");
  QNN_CHECK_MSG(version >= kOldestLoadableVersion && version <= kVersion,
                "unsupported snapshot version " << version
                    << " (this build reads versions "
                    << kOldestLoadableVersion << ".." << kVersion << ')');

  // Validate the trailing CRC before trusting any payload bytes.
  std::size_t end = bytes.size();
  if (version >= 2) {
    QNN_CHECK_MSG(bytes.size() >= pos + sizeof(std::uint32_t),
                  "truncated snapshot: missing CRC32 trailer");
    end = bytes.size() - sizeof(std::uint32_t);
    std::uint32_t stored;
    std::memcpy(&stored, bytes.data() + end, sizeof stored);
    const std::uint32_t actual = crc32(bytes.data(), end);
    QNN_CHECK_MSG(actual == stored,
                  "snapshot CRC mismatch (stored " << stored << ", computed "
                      << actual << ") — file is corrupt or truncated");
  }

  const auto count = take<std::uint64_t>(bytes, pos, "param count");
  const auto params = net.trainable_params();
  QNN_CHECK_MSG(count == params.size(),
                "snapshot has " << count << " params, network has "
                                << params.size());
  for (std::size_t pi = 0; pi < params.size(); ++pi) {
    Param& p = *params[pi];
    const auto name_len = take<std::uint64_t>(bytes, pos, "param name size");
    QNN_CHECK_MSG(name_len <= end - pos,
                  "truncated snapshot: param name of " << name_len
                      << " bytes exceeds remaining file");
    const std::string name = bytes.substr(pos, name_len);
    pos += name_len;
    const std::string expected = p.name + "#" + std::to_string(pi);
    QNN_CHECK_MSG(name == expected, "snapshot param '"
                                        << name << "' does not match '"
                                        << expected << '\'');
    const auto rank = take<std::uint64_t>(bytes, pos, "shape rank");
    QNN_CHECK_MSG(rank <= 8, "implausible snapshot shape rank " << rank);
    std::vector<std::int64_t> dims;
    for (std::uint64_t d = 0; d < rank; ++d)
      dims.push_back(static_cast<std::int64_t>(
          take<std::uint64_t>(bytes, pos, "shape dim")));
    QNN_CHECK_MSG(Shape(dims) == p.value.shape(),
                  "snapshot shape mismatch for " << name);
    const std::size_t nbytes =
        sizeof(float) * static_cast<std::size_t>(p.value.count());
    QNN_CHECK_MSG(nbytes <= end - pos,
                  "truncated snapshot data for " << name);
    std::memcpy(p.value.data(), bytes.data() + pos, nbytes);
    pos += nbytes;
  }
  QNN_CHECK_MSG(pos == end, "trailing bytes in snapshot");
}

void save_params(Network& net, const std::string& path) {
  // Atomic: the snapshot lands in "<path>.tmp" and is renamed into
  // place, so a crash mid-write cannot leave a torn file at `path`.
  write_file_atomic(path, serialize_params(net));
}

void load_params(Network& net, const std::string& path) {
  const std::string bytes = read_file(path);
  try {
    deserialize_params(net, bytes);
  } catch (const CheckError& e) {
    throw CheckError(std::string("loading ") + path + ": " + e.what());
  }
}

}  // namespace qnn::nn
