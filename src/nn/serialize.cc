#include "nn/serialize.h"

#include <cstring>

#include "util/check.h"
#include "util/crc32.h"
#include "util/fileio.h"

namespace qnn::nn {
namespace {

constexpr char kMagic[4] = {'Q', 'N', 'N', 'W'};
// Version 2 adds the trailing CRC32; version 3 adds the activation-
// envelope section (emitted only when envelopes are present, so
// parameter-only snapshots remain byte-identical to version 2).
// Versions 1..3 are all readable.
constexpr std::uint32_t kVersion = 2;
constexpr std::uint32_t kEnvelopeVersion = 3;
constexpr std::uint32_t kOldestLoadableVersion = 1;

template <typename T>
void put(std::string& out, const T& v) {
  const char* p = reinterpret_cast<const char*>(&v);
  out.append(p, sizeof(T));
}

template <typename T>
T take(const std::string& in, std::size_t& pos, const char* what) {
  QNN_CHECK_MSG(pos + sizeof(T) <= in.size(),
                "truncated snapshot: ran out of bytes reading " << what
                    << " at offset " << pos << " (file has " << in.size()
                    << " bytes)");
  T v;
  std::memcpy(&v, in.data() + pos, sizeof(T));
  pos += sizeof(T);
  return v;
}

std::string serialize_params_impl(Network& net,
                                  const protect::EnvelopeSet* envelopes) {
  const bool with_envelopes = envelopes != nullptr && !envelopes->empty();
  const auto params = net.trainable_params();
  std::string out;
  out.append(kMagic, sizeof kMagic);
  put(out, with_envelopes ? kEnvelopeVersion : kVersion);
  put(out, static_cast<std::uint64_t>(params.size()));
  for (std::size_t pi = 0; pi < params.size(); ++pi) {
    const Param& p = *params[pi];
    // Disambiguate repeated "w"/"b" names with the parameter index.
    const std::string name = p.name + "#" + std::to_string(pi);
    put(out, static_cast<std::uint64_t>(name.size()));
    out.append(name);
    const auto& dims = p.value.shape().dims();
    put(out, static_cast<std::uint64_t>(dims.size()));
    for (std::int64_t d : dims) put(out, static_cast<std::uint64_t>(d));
    out.append(reinterpret_cast<const char*>(p.value.data()),
               sizeof(float) * static_cast<std::size_t>(p.value.count()));
  }
  if (with_envelopes) {
    const auto& sites = envelopes->sites();
    put(out, static_cast<std::uint64_t>(sites.size()));
    for (const protect::SiteEnvelope& e : sites) {
      put(out, static_cast<std::uint8_t>(e.valid ? 1 : 0));
      put(out, e.lo);
      put(out, e.hi);
    }
  }
  put(out, crc32(out));
  return out;
}

void deserialize_params_impl(Network& net, const std::string& bytes,
                             protect::EnvelopeSet* envelopes) {
  std::size_t pos = 0;
  QNN_CHECK_MSG(bytes.size() >= sizeof kMagic + sizeof(std::uint32_t),
                "not a QNNW snapshot: file is only " << bytes.size()
                    << " bytes");
  QNN_CHECK_MSG(std::memcmp(bytes.data(), kMagic, sizeof kMagic) == 0,
                "not a QNNW snapshot: bad magic");
  pos = sizeof kMagic;
  const auto version = take<std::uint32_t>(bytes, pos, "version");
  QNN_CHECK_MSG(
      version >= kOldestLoadableVersion && version <= kEnvelopeVersion,
      "unsupported snapshot version " << version
          << " (this build reads versions " << kOldestLoadableVersion << ".."
          << kEnvelopeVersion << ')');

  // Validate the trailing CRC before trusting any payload bytes.
  std::size_t end = bytes.size();
  if (version >= 2) {
    QNN_CHECK_MSG(bytes.size() >= pos + sizeof(std::uint32_t),
                  "truncated snapshot: missing CRC32 trailer");
    end = bytes.size() - sizeof(std::uint32_t);
    std::uint32_t stored;
    std::memcpy(&stored, bytes.data() + end, sizeof stored);
    const std::uint32_t actual = crc32(bytes.data(), end);
    QNN_CHECK_MSG(actual == stored,
                  "snapshot CRC mismatch (stored " << stored << ", computed "
                      << actual << ") — file is corrupt or truncated");
  }

  const auto count = take<std::uint64_t>(bytes, pos, "param count");
  const auto params = net.trainable_params();
  QNN_CHECK_MSG(count == params.size(),
                "snapshot has " << count << " params, network has "
                                << params.size());
  for (std::size_t pi = 0; pi < params.size(); ++pi) {
    Param& p = *params[pi];
    const auto name_len = take<std::uint64_t>(bytes, pos, "param name size");
    QNN_CHECK_MSG(name_len <= end - pos,
                  "truncated snapshot: param name of " << name_len
                      << " bytes exceeds remaining file");
    const std::string name = bytes.substr(pos, name_len);
    pos += name_len;
    const std::string expected = p.name + "#" + std::to_string(pi);
    QNN_CHECK_MSG(name == expected, "snapshot param '"
                                        << name << "' does not match '"
                                        << expected << '\'');
    const auto rank = take<std::uint64_t>(bytes, pos, "shape rank");
    QNN_CHECK_MSG(rank <= 8, "implausible snapshot shape rank " << rank);
    std::vector<std::int64_t> dims;
    for (std::uint64_t d = 0; d < rank; ++d)
      dims.push_back(static_cast<std::int64_t>(
          take<std::uint64_t>(bytes, pos, "shape dim")));
    QNN_CHECK_MSG(Shape(dims) == p.value.shape(),
                  "snapshot shape mismatch for " << name);
    const std::size_t nbytes =
        sizeof(float) * static_cast<std::size_t>(p.value.count());
    QNN_CHECK_MSG(nbytes <= end - pos,
                  "truncated snapshot data for " << name);
    std::memcpy(p.value.data(), bytes.data() + pos, nbytes);
    pos += nbytes;
  }
  if (envelopes != nullptr) *envelopes = protect::EnvelopeSet{};
  if (version >= kEnvelopeVersion) {
    const auto sites = take<std::uint64_t>(bytes, pos, "envelope site count");
    QNN_CHECK_MSG(sites <= (1u << 20),
                  "implausible snapshot envelope site count " << sites);
    std::vector<protect::SiteEnvelope> loaded(
        static_cast<std::size_t>(sites));
    for (std::uint64_t s = 0; s < sites; ++s) {
      protect::SiteEnvelope& e = loaded[static_cast<std::size_t>(s)];
      e.valid = take<std::uint8_t>(bytes, pos, "envelope flag") != 0;
      e.lo = take<double>(bytes, pos, "envelope lo");
      e.hi = take<double>(bytes, pos, "envelope hi");
    }
    // The section is parsed even when the caller does not want it, so
    // the trailing-bytes check below stays meaningful for v3 files.
    if (envelopes != nullptr)
      *envelopes = protect::EnvelopeSet(std::move(loaded));
  }
  QNN_CHECK_MSG(pos == end, "trailing bytes in snapshot");
}

}  // namespace

std::string serialize_params(Network& net) {
  return serialize_params_impl(net, nullptr);
}

std::string serialize_params(Network& net,
                             const protect::EnvelopeSet& envelopes) {
  return serialize_params_impl(net, &envelopes);
}

void deserialize_params(Network& net, const std::string& bytes) {
  deserialize_params_impl(net, bytes, nullptr);
}

void deserialize_params(Network& net, const std::string& bytes,
                        protect::EnvelopeSet* envelopes) {
  deserialize_params_impl(net, bytes, envelopes);
}

void save_params(Network& net, const std::string& path) {
  // Atomic: the snapshot lands in "<path>.tmp" and is renamed into
  // place, so a crash mid-write cannot leave a torn file at `path`.
  write_file_atomic(path, serialize_params(net));
}

void save_params(Network& net, const std::string& path,
                 const protect::EnvelopeSet& envelopes) {
  write_file_atomic(path, serialize_params(net, envelopes));
}

void load_params(Network& net, const std::string& path) {
  const std::string bytes = read_file(path);
  try {
    deserialize_params(net, bytes);
  } catch (const CheckError& e) {
    throw CheckError(std::string("loading ") + path + ": " + e.what());
  }
}

void load_params(Network& net, const std::string& path,
                 protect::EnvelopeSet* envelopes) {
  const std::string bytes = read_file(path);
  try {
    deserialize_params(net, bytes, envelopes);
  } catch (const CheckError& e) {
    throw CheckError(std::string("loading ") + path + ": " + e.what());
  }
}

}  // namespace qnn::nn
