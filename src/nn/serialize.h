// Parameter snapshot serialization.
//
// Binary format (little-endian, as written by the host):
//   magic "QNNW", u32 version, u64 param count, then per parameter:
//   u64 name length + bytes, u64 rank, u64 dims..., f32 data...
// Loading requires an identically-shaped network (same architecture);
// names are checked too, so a LeNet snapshot cannot silently load into
// a ConvNet.
#pragma once

#include <string>

#include "nn/network.h"

namespace qnn::nn {

void save_params(Network& net, const std::string& path);
void load_params(Network& net, const std::string& path);

// In-memory variants (used by tests and by save/load internally).
std::string serialize_params(Network& net);
void deserialize_params(Network& net, const std::string& bytes);

}  // namespace qnn::nn
