// Parameter snapshot serialization.
//
// Binary format (little-endian, as written by the host):
//   magic "QNNW", u32 version, u64 param count, then per parameter:
//   u64 name length + bytes, u64 rank, u64 dims..., f32 data...
// Version 2 appends a trailing u32 CRC-32 over everything before it, so
// truncation and bit rot are detected instead of loading silently
// corrupt weights; version-1 snapshots (no CRC) still load.
//
// Loading requires an identically-shaped network (same architecture);
// names are checked too, so a LeNet snapshot cannot silently load into
// a ConvNet. save_params writes atomically (temp file + rename): a crash
// mid-write never leaves a torn snapshot at the target path.
#pragma once

#include <string>

#include "nn/network.h"

namespace qnn::nn {

void save_params(Network& net, const std::string& path);
void load_params(Network& net, const std::string& path);

// In-memory variants (used by tests and by save/load internally).
std::string serialize_params(Network& net);
void deserialize_params(Network& net, const std::string& bytes);

}  // namespace qnn::nn
