// Parameter snapshot serialization.
//
// Binary format (little-endian, as written by the host):
//   magic "QNNW", u32 version, u64 param count, then per parameter:
//   u64 name length + bytes, u64 rank, u64 dims..., f32 data...
// Version 2 appends a trailing u32 CRC-32 over everything before it, so
// truncation and bit rot are detected instead of loading silently
// corrupt weights; version-1 snapshots (no CRC) still load.
// Version 3 inserts an activation-envelope section (per-site range
// guards from protect/envelope, see DESIGN.md §10) between the last
// parameter and the CRC: u64 site count, then per site u8 valid,
// f64 lo, f64 hi. The writer only emits version 3 when envelopes are
// passed — parameter-only snapshots stay byte-identical to version 2 —
// and the reader accepts versions 1..3.
//
// Loading requires an identically-shaped network (same architecture);
// names are checked too, so a LeNet snapshot cannot silently load into
// a ConvNet. save_params writes atomically (temp file + rename): a crash
// mid-write never leaves a torn snapshot at the target path.
#pragma once

#include <string>

#include "nn/network.h"
#include "protect/envelope.h"

namespace qnn::nn {

void save_params(Network& net, const std::string& path);
void load_params(Network& net, const std::string& path);

// In-memory variants (used by tests and by save/load internally).
std::string serialize_params(Network& net);
void deserialize_params(Network& net, const std::string& bytes);

// Envelope-carrying variants. Serializing with a non-empty envelope set
// writes a version-3 snapshot; an empty set writes plain version 2.
// Deserializing fills *envelopes from the snapshot's envelope section
// when present and clears it for older (v1/v2) snapshots, so the caller
// can distinguish "no envelopes recorded" from "empty envelopes".
std::string serialize_params(Network& net,
                             const protect::EnvelopeSet& envelopes);
void deserialize_params(Network& net, const std::string& bytes,
                        protect::EnvelopeSet* envelopes);
void save_params(Network& net, const std::string& path,
                 const protect::EnvelopeSet& envelopes);
void load_params(Network& net, const std::string& path,
                 protect::EnvelopeSet* envelopes);

}  // namespace qnn::nn
