// Sequential network container and the Model interface the trainer
// drives. quant::QuantizedNetwork implements the same interface around a
// Network, injecting weight/activation quantization.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "nn/layer.h"
#include "util/rng.h"

namespace qnn::nn {

// Abstraction the training/eval loops operate on.
class Model {
 public:
  virtual ~Model() = default;

  virtual Tensor forward(const Tensor& input) = 0;
  // Consumes d(loss)/d(output); parameter gradients accumulate into the
  // Params returned by trainable_params().
  virtual void backward(const Tensor& grad_output) = 0;
  // Parameters the optimizer should update (for QAT these are the
  // full-precision master weights).
  virtual std::vector<Param*> trainable_params() = 0;
  virtual std::string name() const = 0;
  // Train/eval switch for stochastic layers (Dropout); called by the
  // training and evaluation loops.
  virtual void set_training_mode(bool) {}
};

class Network final : public Model {
 public:
  explicit Network(std::string name = "net") : name_(std::move(name)) {}

  // Appends a layer; returns a typed reference for further configuration.
  template <typename L, typename... Args>
  L& add(Args&&... args) {
    auto layer = std::make_unique<L>(std::forward<Args>(args)...);
    L& ref = *layer;
    ref.set_name(name_ + "/" + layer->kind() + std::to_string(layers_.size()));
    layers_.push_back(std::move(layer));
    return ref;
  }

  Tensor forward(const Tensor& input) override;
  void backward(const Tensor& grad_output) override;
  std::vector<Param*> trainable_params() override;
  std::string name() const override { return name_; }
  void set_training_mode(bool training) override {
    for (auto& layer : layers_) layer->set_training_mode(training);
  }

  std::size_t num_layers() const { return layers_.size(); }
  Layer& layer(std::size_t i) { return *layers_.at(i); }
  const Layer& layer(std::size_t i) const { return *layers_.at(i); }

  // He-uniform init of every parameterized layer.
  void init_weights(Rng& rng);

  // Structural description for the hardware model; `input` is the shape
  // of one sample batch (N is ignored, treated as 1).
  std::vector<LayerDesc> describe(const Shape& input) const;

  // Total parameter count (weights + biases).
  std::int64_t num_params() const;

  // Deep copy of all parameter values from another structurally
  // identical network.
  void copy_params_from(const Network& other);

  // Deep copy of the whole network (layers, parameters, cached state);
  // fails if any layer does not implement clone(). Used to build
  // per-thread replicas for parallel fault trials.
  Network clone() const;

 private:
  std::string name_;
  std::vector<LayerPtr> layers_;
};

}  // namespace qnn::nn
