#include "nn/optimizer.h"

#include <cmath>

#include "util/check.h"

namespace qnn::nn {

void Sgd::clip_gradients(const std::vector<Param*>& params,
                         double max_norm) {
  if (max_norm <= 0) return;
  double sq = 0.0;
  for (Param* p : params) {
    const float* g = p->grad.data();
    for (std::int64_t j = 0; j < p->count(); ++j)
      sq += static_cast<double>(g[j]) * g[j];
  }
  const double norm = std::sqrt(sq);
  if (norm <= max_norm || norm == 0.0) return;
  const float scale = static_cast<float>(max_norm / norm);
  for (Param* p : params) p->grad.scale(scale);
}

void Sgd::step(const std::vector<Param*>& params) {
  if (current_lr_ < 0) current_lr_ = config_.learning_rate;
  const double lr = learning_rate();
  clip_gradients(params, config_.clip_grad_norm);
  if (velocity_.empty()) {
    velocity_.reserve(params.size());
    for (Param* p : params) velocity_.emplace_back(p->value.shape());
  }
  QNN_CHECK_MSG(velocity_.size() == params.size(),
                "optimizer bound to a different parameter list");
  for (std::size_t i = 0; i < params.size(); ++i) {
    Param& p = *params[i];
    Tensor& v = velocity_[i];
    QNN_CHECK(v.shape() == p.value.shape());
    const float m = static_cast<float>(config_.momentum);
    const float wd = static_cast<float>(config_.weight_decay);
    const float eta = static_cast<float>(lr);
    float* vd = v.data();
    float* wv = p.value.data();
    const float* g = p.grad.data();
    const std::int64_t n = p.count();
    for (std::int64_t j = 0; j < n; ++j) {
      vd[j] = m * vd[j] - eta * (g[j] + wd * wv[j]);
      wv[j] += vd[j];
    }
  }
}

void Sgd::on_epoch_end(int epoch) {
  if (current_lr_ < 0) current_lr_ = config_.learning_rate;
  if (config_.step_epochs > 0 && (epoch + 1) % config_.step_epochs == 0)
    current_lr_ *= config_.gamma;
}

void Sgd::zero_grad(const std::vector<Param*>& params) {
  for (Param* p : params) p->zero_grad();
}

}  // namespace qnn::nn
