// Max / average 2-D pooling.
//
// Output geometry uses Caffe's ceil mode (the paper's nets are Caffe
// nets): out = ceil((in + 2*pad - k) / stride) + 1, with windows clipped
// to the padded input and average pooling dividing by the *clipped*
// window size, matching Caffe's AVE pooling.
#pragma once

#include <vector>

#include "nn/layer.h"

namespace qnn::nn {

enum class PoolMode { kMax, kAvg };

struct PoolSpec {
  PoolMode mode = PoolMode::kMax;
  std::int64_t kernel = 2;
  std::int64_t stride = 2;
  std::int64_t pad = 0;
};

class Pool2d final : public Layer {
 public:
  explicit Pool2d(const PoolSpec& spec);

  const char* kind() const override {
    return spec_.mode == PoolMode::kMax ? "pool_max" : "pool_avg";
  }
  Shape output_shape(const Shape& in) const override;
  Tensor forward(const Tensor& in) override;
  Tensor backward(const Tensor& grad_out) override;
  LayerDesc describe(const Shape& in) const override;
  LayerPtr clone() const override { return std::make_unique<Pool2d>(*this); }

  const PoolSpec& spec() const { return spec_; }

 private:
  std::int64_t out_extent(std::int64_t in) const;

  PoolSpec spec_;
  Shape cached_in_shape_;
  std::vector<std::int64_t> argmax_;  // flat input index per output (max)
};

}  // namespace qnn::nn
