#include "nn/activation.h"

#include <cmath>

#include "obs/trace.h"
#include "util/check.h"
#include "util/thread_pool.h"

namespace qnn::nn {
namespace {

// Elementwise map over a tensor, sharded with disjoint writes. The
// per-element work is a handful of ops, so the grain keeps small
// tensors (fc outputs, logits) in a single inline shard.
template <typename F>
void elementwise(Tensor& t, F&& fn) {
  parallel_for_shards(t.count(), kReductionShards, shard_grain(4),
                      [&](std::size_t, std::int64_t begin, std::int64_t end) {
                        for (std::int64_t i = begin; i < end; ++i) fn(i);
                      });
}

}  // namespace

Tensor Relu::forward(const Tensor& in) {
  QNN_SPAN("relu_forward", "layer");
  Tensor out = in;
  elementwise(out, [&](std::int64_t i) {
    if (out[i] < 0) out[i] = 0;
  });
  cached_out_ = out;
  return out;
}

Tensor Relu::backward(const Tensor& grad_out) {
  QNN_CHECK_MSG(!cached_out_.empty(), "backward before forward");
  QNN_CHECK(grad_out.shape() == cached_out_.shape());
  Tensor grad_in = grad_out;
  elementwise(grad_in, [&](std::int64_t i) {
    if (cached_out_[i] <= 0) grad_in[i] = 0;
  });
  return grad_in;
}

Tensor Sigmoid::forward(const Tensor& in) {
  QNN_SPAN("sigmoid_forward", "layer");
  Tensor out = in;
  elementwise(out, [&](std::int64_t i) {
    out[i] = 1.0f / (1.0f + std::exp(-out[i]));
  });
  cached_out_ = out;
  return out;
}

Tensor Sigmoid::backward(const Tensor& grad_out) {
  QNN_CHECK_MSG(!cached_out_.empty(), "backward before forward");
  QNN_CHECK(grad_out.shape() == cached_out_.shape());
  Tensor grad_in = grad_out;
  elementwise(grad_in, [&](std::int64_t i) {
    const float y = cached_out_[i];
    grad_in[i] *= y * (1.0f - y);
  });
  return grad_in;
}

Tensor Tanh::forward(const Tensor& in) {
  QNN_SPAN("tanh_forward", "layer");
  Tensor out = in;
  elementwise(out, [&](std::int64_t i) { out[i] = std::tanh(out[i]); });
  cached_out_ = out;
  return out;
}

Tensor Tanh::backward(const Tensor& grad_out) {
  QNN_CHECK_MSG(!cached_out_.empty(), "backward before forward");
  QNN_CHECK(grad_out.shape() == cached_out_.shape());
  Tensor grad_in = grad_out;
  elementwise(grad_in, [&](std::int64_t i) {
    const float y = cached_out_[i];
    grad_in[i] *= 1.0f - y * y;
  });
  return grad_in;
}

Dropout::Dropout(double drop_probability, std::uint64_t seed)
    : p_(drop_probability), rng_(seed) {
  QNN_CHECK_MSG(p_ >= 0.0 && p_ < 1.0,
                "drop probability " << p_ << " out of [0,1)");
}

Tensor Dropout::forward(const Tensor& in) {
  QNN_SPAN("dropout_forward", "layer");
  if (!training_ || p_ == 0.0) {
    mask_.clear();
    return in;
  }
  const float keep_scale = static_cast<float>(1.0 / (1.0 - p_));
  mask_.resize(static_cast<std::size_t>(in.count()));
  Tensor out = in;
  // Intentionally serial: the mask consumes one sequential RNG stream,
  // and sharding it would make the draws depend on the thread count.
  for (std::int64_t i = 0; i < out.count(); ++i) {
    const float m = rng_.bernoulli(p_) ? 0.0f : keep_scale;
    mask_[static_cast<std::size_t>(i)] = m;
    out[i] *= m;
  }
  return out;
}

Tensor Dropout::backward(const Tensor& grad_out) {
  if (mask_.empty()) return grad_out;  // eval-mode / p == 0 forward
  QNN_CHECK(static_cast<std::size_t>(grad_out.count()) == mask_.size());
  Tensor grad_in = grad_out;
  elementwise(grad_in, [&](std::int64_t i) {
    grad_in[i] *= mask_[static_cast<std::size_t>(i)];
  });
  return grad_in;
}

}  // namespace qnn::nn
