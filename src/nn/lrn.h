// Local Response Normalization across channels (Krizhevsky et al.) —
// the normalization used by the full CIFAR-10 "ALEX" family of nets.
//
//   out[c] = in[c] / (k + alpha/n * sum_{j in window(c)} in[j]^2)^beta
//
// where window(c) spans `local_size` adjacent channels centered on c.
#pragma once

#include "nn/layer.h"

namespace qnn::nn {

struct LrnSpec {
  std::int64_t local_size = 5;  // must be odd
  double alpha = 1e-4;
  double beta = 0.75;
  double k = 1.0;
};

class Lrn final : public Layer {
 public:
  explicit Lrn(const LrnSpec& spec);

  const char* kind() const override { return "lrn"; }
  Shape output_shape(const Shape& in) const override { return in; }
  Tensor forward(const Tensor& in) override;
  Tensor backward(const Tensor& grad_out) override;
  LayerPtr clone() const override { return std::make_unique<Lrn>(*this); }
  const LrnSpec& spec() const { return spec_; }

 private:
  LrnSpec spec_;
  Tensor cached_in_;
  Tensor cached_scale_;  // (k + alpha/n * window sum) per element
};

}  // namespace qnn::nn
