// Fully-connected ("inner product", Caffe naming) layer.
// Accepts rank-4 inputs by flattening per sample.
#pragma once

#include "nn/layer.h"
#include "tensor/gemm.h"
#include "util/rng.h"

namespace qnn::nn {

class InnerProduct final : public Layer {
 public:
  InnerProduct(std::int64_t in_features, std::int64_t out_features,
               bool bias = true);

  const char* kind() const override { return "inner_product"; }
  Shape output_shape(const Shape& in) const override;
  Tensor forward(const Tensor& in) override;
  Tensor backward(const Tensor& grad_out) override;
  std::vector<Param*> params() override;
  LayerDesc describe(const Shape& in) const override;
  LayerPtr clone() const override {
    return std::make_unique<InnerProduct>(*this);
  }

  void init_weights(Rng& rng);

  Param& weight() { return weight_; }
  Param& bias() { return bias_; }
  std::int64_t in_features() const { return in_features_; }
  std::int64_t out_features() const { return out_features_; }

 private:
  std::int64_t flat_features(const Shape& in) const;

  std::int64_t in_features_;
  std::int64_t out_features_;
  Param weight_;  // (Out, In) row-major
  Param bias_;    // (Out)
  Tensor cached_in_;  // flattened (N, In)
  Shape cached_orig_shape_;
  Tensor dw_scratch_;  // reused across backward calls (was per-call)
  // Hoisted gemm workspaces (weight transpose + K-shard partials) so the
  // tall-K forward/backward products stop heap-allocating per call. The
  // forward gemm is the K-sharded hot path: M = batch is too small to
  // saturate the pool, K = in_features is large (tensor/gemm.h).
  GemmScratch fwd_scratch_;
  GemmScratch bwd_scratch_;
};

}  // namespace qnn::nn
