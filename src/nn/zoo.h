// The paper's benchmark architectures (Table I and Table II).
//
//   LeNet   — MNIST,  28×28×1
//   ConvNet — SVHN,   32×32×3
//   ALEX    — CIFAR-10, 32×32×3 (Krizhevsky's cifar10_quick-style net)
//   ALEX+   — ALEX with doubled conv channels            (Table II)
//   ALEX++  — channels doubled when feature size halves  (Table II)
//
// `channel_scale` multiplies every hidden channel/unit count (output
// classes stay 10); benches use < 1 scales to keep single-core training
// tractable while preserving each architecture's structure. Scale 1
// reproduces the paper's parameter counts exactly (validated in tests).
#pragma once

#include <memory>
#include <string>

#include "nn/network.h"

namespace qnn::nn {

struct ZooConfig {
  double channel_scale = 1.0;
  std::uint64_t init_seed = 1;
};

std::unique_ptr<Network> make_lenet(const ZooConfig& config = {});
std::unique_ptr<Network> make_convnet(const ZooConfig& config = {});
std::unique_ptr<Network> make_alex(const ZooConfig& config = {});
std::unique_ptr<Network> make_alex_plus(const ZooConfig& config = {});
std::unique_ptr<Network> make_alex_plus_plus(const ZooConfig& config = {});

// By name: "lenet" | "convnet" | "alex" | "alex+" | "alex++".
std::unique_ptr<Network> make_network(const std::string& name,
                                      const ZooConfig& config = {});

// The sample input shape (N=1) each architecture expects.
Shape input_shape_for(const std::string& name);

}  // namespace qnn::nn
