// 2-D convolution layer (cross-correlation, as in Caffe), lowered to
// GEMM via im2col.
#pragma once

#include "nn/layer.h"
#include "tensor/gemm.h"
#include "tensor/im2col.h"
#include "util/rng.h"

namespace qnn::nn {

struct ConvSpec {
  std::int64_t out_channels = 0;
  std::int64_t kernel = 0;      // square kernels, as in all paper nets
  std::int64_t stride = 1;
  std::int64_t pad = 0;
  bool bias = true;
};

class Conv2d final : public Layer {
 public:
  Conv2d(std::int64_t in_channels, const ConvSpec& spec);

  const char* kind() const override { return "conv"; }
  Shape output_shape(const Shape& in) const override;
  Tensor forward(const Tensor& in) override;
  Tensor backward(const Tensor& grad_out) override;
  std::vector<Param*> params() override;
  LayerDesc describe(const Shape& in) const override;
  LayerPtr clone() const override { return std::make_unique<Conv2d>(*this); }

  // He-uniform initialization (fan-in based).
  void init_weights(Rng& rng);

  Param& weight() { return weight_; }
  Param& bias() { return bias_; }
  const ConvSpec& spec() const { return spec_; }
  std::int64_t in_channels() const { return in_channels_; }

 private:
  ConvGeometry geometry(const Shape& in) const;

  std::int64_t in_channels_;
  ConvSpec spec_;
  Param weight_;  // (Cout, Cin, K, K)
  Param bias_;    // (Cout) — empty when spec.bias == false
  Tensor cached_in_;

  // Per-shard scratch reused across calls instead of heap-allocating
  // rows*cols floats on every forward/backward. One slot per sample
  // shard so the batch loop can run on the thread pool; sized lazily in
  // forward/backward (clone() copies are resized on first use).
  std::vector<std::vector<float>> colbuf_;   // im2col patches
  std::vector<std::vector<float>> gcol_;     // column-space gradients
  std::vector<std::vector<float>> dw_;       // weight-grad partials
  std::vector<std::vector<double>> db_;      // bias-grad partials
  // Per-shard gemm workspaces: Cin*K*K exceeds the K-chunk width for
  // the paper's larger convolutions, so each shard's gemms carry their
  // own chunk-partial (and bt transpose) buffers across calls.
  std::vector<GemmScratch> gemm_scratch_;
};

}  // namespace qnn::nn
