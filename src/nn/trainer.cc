#include "nn/trainer.h"

#include <algorithm>

#include "nn/loss.h"
#include "obs/trace.h"
#include "util/check.h"
#include "util/logging.h"
#include "util/thread_pool.h"

namespace qnn::nn {

TrainResult train(Model& model, const data::Dataset& train,
                  const TrainConfig& config) {
  QNN_CHECK(train.size() > 0);
  Sgd opt(config.sgd);
  Rng shuffle_rng(config.shuffle_seed);
  Rng augment_rng(config.augment.seed);
  auto params = model.trainable_params();
  model.set_training_mode(true);

  TrainResult result;
  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    QNN_SPAN_N("train_epoch", "nn", epoch);
    const auto order = data::shuffled_indices(train.size(), shuffle_rng);
    const data::Dataset shuffled = train.gather(order);

    double loss_sum = 0.0;
    std::int64_t batches = 0, correct = 0;
    for (std::int64_t first = 0; first < shuffled.size();
         first += config.batch_size) {
      const std::int64_t count =
          std::min(config.batch_size, shuffled.size() - first);
      Tensor x = data::batch_images(shuffled, first, count);
      if (config.augment.enabled())
        x = data::augment_batch(x, config.augment, augment_rng);
      const auto y = data::batch_labels(shuffled, first, count);

      Sgd::zero_grad(params);
      const Tensor logits = model.forward(x);
      LossResult lr = softmax_cross_entropy(logits, y);
      model.backward(lr.grad_logits);
      opt.step(params);
      if (config.after_step) config.after_step();

      loss_sum += lr.loss;
      ++batches;
      for (std::size_t i = 0; i < y.size(); ++i)
        if (lr.predictions[i] == y[i]) ++correct;
    }
    opt.on_epoch_end(epoch);

    EpochStats stats;
    stats.mean_loss = loss_sum / static_cast<double>(std::max<std::int64_t>(batches, 1));
    stats.train_accuracy =
        100.0 * static_cast<double>(correct) / static_cast<double>(shuffled.size());
    result.epochs.push_back(stats);
    if (config.verbose) {
      QNN_LOG(Info) << model.name() << " epoch " << epoch + 1 << '/'
                    << config.epochs << " loss=" << stats.mean_loss
                    << " train_acc=" << stats.train_accuracy << '%';
    }
  }
  return result;
}

double evaluate(Model& model, const data::Dataset& d,
                std::int64_t batch_size) {
  QNN_SPAN_N("evaluate", "nn", d.size());
  QNN_CHECK(d.size() > 0);
  model.set_training_mode(false);
  std::int64_t correct = 0;
  for (std::int64_t first = 0; first < d.size(); first += batch_size) {
    const std::int64_t count = std::min(batch_size, d.size() - first);
    const Tensor x = data::batch_images(d, first, count);
    const auto y = data::batch_labels(d, first, count);
    const Tensor logits = model.forward(x);
    QNN_CHECK(logits.shape().rank() == 2);
    const std::int64_t k = logits.shape()[1];
    // Per-shard counts in padded slots, merged in shard order: the
    // fixed shard plan keeps the reduction identical for every thread
    // count, and the grain keeps small batches in one inline shard.
    const std::vector<Shard> shards =
        make_shards(count, kReductionShards, shard_grain(2 * k));
    std::vector<Padded<std::int64_t>> partial(shards.size());
    parallel_run(static_cast<std::int64_t>(shards.size()),
                 [&](std::int64_t si) {
                   std::int64_t hits = 0;
                   const Shard& sh = shards[static_cast<std::size_t>(si)];
                   for (std::int64_t s = sh.begin; s < sh.end; ++s) {
                     const float* row = logits.data() + s * k;
                     const int pred = static_cast<int>(
                         std::max_element(row, row + k) - row);
                     if (pred == y[static_cast<std::size_t>(s)]) ++hits;
                   }
                   partial[static_cast<std::size_t>(si)].v = hits;
                 });
    for (const Padded<std::int64_t>& hits : partial) correct += hits.v;
  }
  return 100.0 * static_cast<double>(correct) / static_cast<double>(d.size());
}

}  // namespace qnn::nn
