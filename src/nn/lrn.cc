#include "nn/lrn.h"

#include <cmath>

#include "obs/trace.h"
#include "util/check.h"
#include "util/thread_pool.h"

namespace qnn::nn {

Lrn::Lrn(const LrnSpec& spec) : spec_(spec) {
  QNN_CHECK_MSG(spec.local_size > 0 && spec.local_size % 2 == 1,
                "LRN local_size must be odd and positive");
  QNN_CHECK(spec.beta > 0 && spec.k > 0);
}

Tensor Lrn::forward(const Tensor& in) {
  QNN_SPAN("lrn_forward", "layer");
  const Shape& s = in.shape();
  QNN_CHECK(s.rank() == 4);
  const std::int64_t half = spec_.local_size / 2;
  const double alpha_over_n =
      spec_.alpha / static_cast<double>(spec_.local_size);

  Tensor out(s);
  // Reuse the scale cache across calls; every element is overwritten
  // below, so no clearing is needed (was reallocated per forward).
  if (cached_scale_.shape() != s) cached_scale_ = Tensor(s);
  const std::int64_t plane = s.h() * s.w();
  // Normalization windows span channels within one sample, so samples
  // are independent and the batch loop shards without changing results.
  // A sample costs one channel window per element.
  const std::int64_t sample_cost = s.c() * plane * spec_.local_size;
  parallel_for_shards(s.n(), kReductionShards, shard_grain(sample_cost),
                      [&](std::size_t, std::int64_t begin,
                          std::int64_t end) {
    for (std::int64_t n = begin; n < end; ++n) {
      for (std::int64_t p = 0; p < plane; ++p) {
        for (std::int64_t c = 0; c < s.c(); ++c) {
          double sum = 0.0;
          const std::int64_t lo = std::max<std::int64_t>(0, c - half);
          const std::int64_t hi =
              std::min<std::int64_t>(s.c() - 1, c + half);
          for (std::int64_t j = lo; j <= hi; ++j) {
            const float v = in[(n * s.c() + j) * plane + p];
            sum += static_cast<double>(v) * v;
          }
          const double scale = spec_.k + alpha_over_n * sum;
          const std::int64_t idx = (n * s.c() + c) * plane + p;
          cached_scale_[idx] = static_cast<float>(scale);
          out[idx] = static_cast<float>(in[idx] *
                                        std::pow(scale, -spec_.beta));
        }
      }
    }
  });
  cached_in_ = in;
  return out;
}

Tensor Lrn::backward(const Tensor& grad_out) {
  QNN_CHECK_MSG(!cached_in_.empty(), "backward before forward");
  const Shape& s = cached_in_.shape();
  QNN_CHECK(grad_out.shape() == s);
  const std::int64_t half = spec_.local_size / 2;
  const double alpha_over_n =
      spec_.alpha / static_cast<double>(spec_.local_size);

  // d out[c] / d in[i] = scale[c]^-beta * [c == i]
  //   - 2 beta alpha/n * in[c] * in[i] * scale[c]^-(beta+1)  for i in
  //     window(c). Accumulate over all output channels c whose window
  //     contains i. Cross terms never leave the sample, so the batch
  //     loop shards with disjoint writes.
  Tensor grad_in(s);
  const std::int64_t plane = s.h() * s.w();
  parallel_for_shards(s.n(), kReductionShards,
                      shard_grain(2 * s.c() * plane * spec_.local_size),
                      [&](std::size_t, std::int64_t begin,
                          std::int64_t end) {
    for (std::int64_t n = begin; n < end; ++n) {
      for (std::int64_t p = 0; p < plane; ++p) {
        for (std::int64_t c = 0; c < s.c(); ++c) {
          const std::int64_t idx_c = (n * s.c() + c) * plane + p;
          const double scale = cached_scale_[idx_c];
          const double go = grad_out[idx_c];
          const double pow_beta = std::pow(scale, -spec_.beta);
          // Diagonal term.
          grad_in[idx_c] += static_cast<float>(go * pow_beta);
          // Cross terms.
          const double common = -2.0 * spec_.beta * alpha_over_n * go *
                                cached_in_[idx_c] * pow_beta / scale;
          const std::int64_t lo = std::max<std::int64_t>(0, c - half);
          const std::int64_t hi =
              std::min<std::int64_t>(s.c() - 1, c + half);
          for (std::int64_t i = lo; i <= hi; ++i) {
            const std::int64_t idx_i = (n * s.c() + i) * plane + p;
            grad_in[idx_i] +=
                static_cast<float>(common * cached_in_[idx_i]);
          }
        }
      }
    }
  });
  return grad_in;
}

}  // namespace qnn::nn
