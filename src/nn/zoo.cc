#include "nn/zoo.h"

#include <algorithm>
#include <cmath>

#include "nn/activation.h"
#include "nn/conv.h"
#include "nn/inner_product.h"
#include "nn/pool.h"
#include "util/check.h"

namespace qnn::nn {
namespace {

std::int64_t scaled(std::int64_t channels, double scale) {
  const auto s = static_cast<std::int64_t>(
      std::lround(static_cast<double>(channels) * scale));
  return std::max<std::int64_t>(s, 2);
}

ConvSpec conv(std::int64_t out_c, std::int64_t k, std::int64_t pad = 0) {
  ConvSpec s;
  s.out_channels = out_c;
  s.kernel = k;
  s.stride = 1;
  s.pad = pad;
  return s;
}

PoolSpec pool(PoolMode mode, std::int64_t k, std::int64_t stride) {
  PoolSpec s;
  s.mode = mode;
  s.kernel = k;
  s.stride = stride;
  return s;
}

}  // namespace

std::unique_ptr<Network> make_lenet(const ZooConfig& config) {
  const double cs = config.channel_scale;
  auto net = std::make_unique<Network>("lenet");
  // Table I: conv 5×5×20, maxpool 2×2, conv 5×5×50, maxpool 2×2,
  //          innerproduct 500, innerproduct 10. (Caffe LeNet: the single
  //          ReLU sits after ip500.)
  const std::int64_t c1 = scaled(20, cs), c2 = scaled(50, cs);
  const std::int64_t fc = scaled(500, cs);
  net->add<Conv2d>(1, conv(c1, 5));                       // 28 -> 24
  net->add<Pool2d>(pool(PoolMode::kMax, 2, 2));           // 24 -> 12
  net->add<Conv2d>(c1, conv(c2, 5));                      // 12 -> 8
  net->add<Pool2d>(pool(PoolMode::kMax, 2, 2));           // 8 -> 4
  net->add<InnerProduct>(c2 * 4 * 4, fc);
  net->add<Relu>();
  net->add<InnerProduct>(fc, 10);
  Rng rng(config.init_seed);
  net->init_weights(rng);
  return net;
}

std::unique_ptr<Network> make_convnet(const ZooConfig& config) {
  const double cs = config.channel_scale;
  auto net = std::make_unique<Network>("convnet");
  // Table I: conv 5×5×16, maxpool 2×2, conv 7×7×512, maxpool 2×2,
  //          innerproduct 20, innerproduct 10.
  // The narrow 20-unit head is kept unscaled: squeezing it below the
  // class count starves the classifier. Table I lists no nonlinearity
  // between the two inner products (Sermanet's ConvNet), and a ReLU on
  // a 20-wide bottleneck is a dead-unit trap, so none is inserted.
  const std::int64_t c1 = scaled(16, cs), c2 = scaled(512, cs);
  const std::int64_t fc = 20;
  net->add<Conv2d>(3, conv(c1, 5));                       // 32 -> 28
  net->add<Pool2d>(pool(PoolMode::kMax, 2, 2));           // 28 -> 14
  net->add<Relu>();
  net->add<Conv2d>(c1, conv(c2, 7));                      // 14 -> 8
  net->add<Pool2d>(pool(PoolMode::kMax, 2, 2));           // 8 -> 4
  net->add<Relu>();
  net->add<InnerProduct>(c2 * 4 * 4, fc);
  net->add<InnerProduct>(fc, 10);
  Rng rng(config.init_seed);
  net->init_weights(rng);
  return net;
}

std::unique_ptr<Network> make_alex(const ZooConfig& config) {
  const double cs = config.channel_scale;
  auto net = std::make_unique<Network>("alex");
  // Table I: conv 5×5×32, maxpool 3×3, conv 5×5×32, avgpool 3×3,
  //          conv 5×5×64, avgpool 3×3, innerproduct 10.
  // Pads of 2 and stride-2 pools follow Caffe's cifar10_quick, which
  // this column of Table I describes: 32 -> 16 -> 8 -> 4.
  const std::int64_t c1 = scaled(32, cs), c2 = scaled(32, cs),
                     c3 = scaled(64, cs);
  net->add<Conv2d>(3, conv(c1, 5, 2));                    // 32
  net->add<Pool2d>(pool(PoolMode::kMax, 3, 2));           // 32 -> 16
  net->add<Relu>();
  net->add<Conv2d>(c1, conv(c2, 5, 2));                   // 16
  net->add<Relu>();
  net->add<Pool2d>(pool(PoolMode::kAvg, 3, 2));           // 16 -> 8
  net->add<Conv2d>(c2, conv(c3, 5, 2));                   // 8
  net->add<Relu>();
  net->add<Pool2d>(pool(PoolMode::kAvg, 3, 2));           // 8 -> 4
  net->add<InnerProduct>(c3 * 4 * 4, 10);
  Rng rng(config.init_seed);
  net->init_weights(rng);
  return net;
}

std::unique_ptr<Network> make_alex_plus(const ZooConfig& config) {
  const double cs = config.channel_scale;
  auto net = std::make_unique<Network>("alex+");
  // Table II (ALEX+): channel counts of ALEX doubled:
  // conv 5×5×64, maxpool 3×3, conv 5×5×64, avgpool 3×3, conv 5×5×128,
  // avgpool 3×3, innerproduct 10.
  const std::int64_t c1 = scaled(64, cs), c2 = scaled(64, cs),
                     c3 = scaled(128, cs);
  net->add<Conv2d>(3, conv(c1, 5, 2));
  net->add<Pool2d>(pool(PoolMode::kMax, 3, 2));
  net->add<Relu>();
  net->add<Conv2d>(c1, conv(c2, 5, 2));
  net->add<Relu>();
  net->add<Pool2d>(pool(PoolMode::kAvg, 3, 2));
  net->add<Conv2d>(c2, conv(c3, 5, 2));
  net->add<Relu>();
  net->add<Pool2d>(pool(PoolMode::kAvg, 3, 2));
  net->add<InnerProduct>(c3 * 4 * 4, 10);
  Rng rng(config.init_seed);
  net->init_weights(rng);
  return net;
}

std::unique_ptr<Network> make_alex_plus_plus(const ZooConfig& config) {
  const double cs = config.channel_scale;
  auto net = std::make_unique<Network>("alex++");
  // Table II (ALEX++): VGG-style — channels double when the feature map
  // halves: conv 3×3×64, maxpool 2×2, conv 3×3×128, maxpool 2×2,
  // conv 3×3×256, maxpool 2×2, innerproduct 512, innerproduct 10.
  const std::int64_t c1 = scaled(64, cs), c2 = scaled(128, cs),
                     c3 = scaled(256, cs), fc = scaled(512, cs);
  net->add<Conv2d>(3, conv(c1, 3, 1));                    // 32
  net->add<Pool2d>(pool(PoolMode::kMax, 2, 2));           // 32 -> 16
  net->add<Relu>();
  net->add<Conv2d>(c1, conv(c2, 3, 1));                   // 16
  net->add<Pool2d>(pool(PoolMode::kMax, 2, 2));           // 16 -> 8
  net->add<Relu>();
  net->add<Conv2d>(c2, conv(c3, 3, 1));                   // 8
  net->add<Pool2d>(pool(PoolMode::kMax, 2, 2));           // 8 -> 4
  net->add<Relu>();
  net->add<InnerProduct>(c3 * 4 * 4, fc);
  net->add<Relu>();
  net->add<InnerProduct>(fc, 10);
  Rng rng(config.init_seed);
  net->init_weights(rng);
  return net;
}

std::unique_ptr<Network> make_network(const std::string& name,
                                      const ZooConfig& config) {
  if (name == "lenet") return make_lenet(config);
  if (name == "convnet") return make_convnet(config);
  if (name == "alex") return make_alex(config);
  if (name == "alex+") return make_alex_plus(config);
  if (name == "alex++") return make_alex_plus_plus(config);
  QNN_CHECK_MSG(false, "unknown network " << name);
  return nullptr;
}

Shape input_shape_for(const std::string& name) {
  if (name == "lenet") return Shape{1, 1, 28, 28};
  if (name == "convnet" || name == "alex" || name == "alex+" ||
      name == "alex++")
    return Shape{1, 3, 32, 32};
  QNN_CHECK_MSG(false, "unknown network " << name);
  return Shape{};
}

}  // namespace qnn::nn
