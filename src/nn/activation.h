// Element-wise nonlinearities. The paper's accelerator implements the
// nonlinearity as the third NFU pipeline stage.
#pragma once

#include "nn/layer.h"

namespace qnn::nn {

class Relu final : public Layer {
 public:
  const char* kind() const override { return "relu"; }
  Shape output_shape(const Shape& in) const override { return in; }
  Tensor forward(const Tensor& in) override;
  Tensor backward(const Tensor& grad_out) override;
  LayerPtr clone() const override { return std::make_unique<Relu>(*this); }

 private:
  Tensor cached_out_;
};

// Logistic sigmoid — the nonlinearity DianNao's NFU-3 stage implements
// as a piecewise-linear approximation.
class Sigmoid final : public Layer {
 public:
  const char* kind() const override { return "sigmoid"; }
  Shape output_shape(const Shape& in) const override { return in; }
  Tensor forward(const Tensor& in) override;
  Tensor backward(const Tensor& grad_out) override;
  LayerPtr clone() const override { return std::make_unique<Sigmoid>(*this); }

 private:
  Tensor cached_out_;
};

// Hyperbolic tangent (Sermanet's original SVHN ConvNet used tanh).
class Tanh final : public Layer {
 public:
  const char* kind() const override { return "tanh"; }
  Shape output_shape(const Shape& in) const override { return in; }
  Tensor forward(const Tensor& in) override;
  Tensor backward(const Tensor& grad_out) override;
  LayerPtr clone() const override { return std::make_unique<Tanh>(*this); }

 private:
  Tensor cached_out_;
};

// Inverted dropout: scales kept activations by 1/(1-p) at train time so
// inference is a no-op. Call set_training(false) (the default is true
// only during nn::train via TrainConfig) before evaluation.
class Dropout final : public Layer {
 public:
  explicit Dropout(double drop_probability, std::uint64_t seed = 17);

  const char* kind() const override { return "dropout"; }
  Shape output_shape(const Shape& in) const override { return in; }
  Tensor forward(const Tensor& in) override;
  Tensor backward(const Tensor& grad_out) override;
  LayerPtr clone() const override { return std::make_unique<Dropout>(*this); }

  void set_training(bool training) { training_ = training; }
  void set_training_mode(bool training) override {
    set_training(training);
  }
  bool training() const { return training_; }
  double drop_probability() const { return p_; }

 private:
  double p_;
  bool training_ = true;
  Rng rng_;
  std::vector<float> mask_;  // 0 or 1/(1-p) per element
};

}  // namespace qnn::nn
