#include "nn/network.h"

#include "nn/conv.h"
#include "nn/inner_product.h"
#include "obs/trace.h"
#include "util/check.h"

namespace qnn::nn {

Tensor Network::forward(const Tensor& input) {
  QNN_SPAN_N("net_forward", "nn", input.shape()[0]);
  Tensor x = input;
  for (auto& layer : layers_) x = layer->forward(x);
  return x;
}

void Network::backward(const Tensor& grad_output) {
  Tensor g = grad_output;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it)
    g = (*it)->backward(g);
}

std::vector<Param*> Network::trainable_params() {
  std::vector<Param*> all;
  for (auto& layer : layers_)
    for (Param* p : layer->params()) all.push_back(p);
  return all;
}

void Network::init_weights(Rng& rng) {
  for (auto& layer : layers_) {
    if (auto* conv = dynamic_cast<Conv2d*>(layer.get()))
      conv->init_weights(rng);
    else if (auto* ip = dynamic_cast<InnerProduct*>(layer.get()))
      ip->init_weights(rng);
  }
}

std::vector<LayerDesc> Network::describe(const Shape& input) const {
  QNN_CHECK(input.rank() >= 2);
  // Normalize to batch size 1.
  std::vector<std::int64_t> dims = input.dims();
  dims[0] = 1;
  Shape shape{dims};
  std::vector<LayerDesc> descs;
  descs.reserve(layers_.size());
  for (const auto& layer : layers_) {
    descs.push_back(layer->describe(shape));
    shape = descs.back().out;
  }
  return descs;
}

std::int64_t Network::num_params() const {
  std::int64_t total = 0;
  for (const auto& layer : layers_)
    for (Param* p : const_cast<Layer&>(*layer).params()) total += p->count();
  return total;
}

Network Network::clone() const {
  Network copy(name_);
  copy.layers_.reserve(layers_.size());
  for (const auto& layer : layers_) {
    LayerPtr c = layer->clone();
    QNN_CHECK_MSG(c != nullptr,
                  "layer " << layer->name() << " does not support clone()");
    c->set_name(layer->name());
    copy.layers_.push_back(std::move(c));
  }
  return copy;
}

void Network::copy_params_from(const Network& other) {
  auto dst = trainable_params();
  auto src = const_cast<Network&>(other).trainable_params();
  QNN_CHECK_MSG(dst.size() == src.size(), "param list mismatch");
  for (std::size_t i = 0; i < dst.size(); ++i) {
    QNN_CHECK(dst[i]->value.shape() == src[i]->value.shape());
    dst[i]->value = src[i]->value;
  }
}

}  // namespace qnn::nn
