#include "nn/loss.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"
#include "util/thread_pool.h"

namespace qnn::nn {

Tensor softmax(const Tensor& logits) {
  QNN_CHECK(logits.shape().rank() == 2);
  const std::int64_t n = logits.shape()[0], k = logits.shape()[1];
  Tensor probs(logits.shape());
  // Rows are independent; sharding the sample loop changes nothing. A
  // row costs a few passes over k elements (max, exp, divide), so the
  // grain folds small eval batches into one inline shard.
  parallel_for_shards(n, kReductionShards, shard_grain(8 * k),
                      [&](std::size_t, std::int64_t begin,
                          std::int64_t end) {
    for (std::int64_t s = begin; s < end; ++s) {
      const float* row = logits.data() + s * k;
      float* out = probs.data() + s * k;
      const float mx = *std::max_element(row, row + k);
      double denom = 0.0;
      for (std::int64_t j = 0; j < k; ++j) {
        out[j] = std::exp(row[j] - mx);
        denom += out[j];
      }
      for (std::int64_t j = 0; j < k; ++j)
        out[j] = static_cast<float>(out[j] / denom);
    }
  });
  return probs;
}

LossResult softmax_cross_entropy(const Tensor& logits,
                                 const std::vector<int>& labels) {
  QNN_CHECK(logits.shape().rank() == 2);
  const std::int64_t n = logits.shape()[0], k = logits.shape()[1];
  QNN_CHECK(static_cast<std::int64_t>(labels.size()) == n);

  LossResult r;
  r.grad_logits = softmax(logits);
  r.predictions.resize(static_cast<std::size_t>(n));

  // Per-shard double partial sums in cache-line-padded slots, merged
  // below in shard-index order so the reported loss is independent of
  // the thread count; the grain keeps small batches inline.
  const std::vector<Shard> shards =
      make_shards(n, kReductionShards, shard_grain(6 * k));
  std::vector<Padded<double>> partial(shards.size());
  parallel_run(static_cast<std::int64_t>(shards.size()), [&](std::int64_t
                                                                 si) {
    double total = 0.0;
    const Shard& sh = shards[static_cast<std::size_t>(si)];
    for (std::int64_t s = sh.begin; s < sh.end; ++s) {
      float* row = r.grad_logits.data() + s * k;
      const int y = labels[static_cast<std::size_t>(s)];
      QNN_CHECK(y >= 0 && y < k);
      // Clamp to avoid log(0) when the softmax saturates in low precision.
      total += -std::log(std::max(row[y], 1e-12f));
      r.predictions[static_cast<std::size_t>(s)] = static_cast<int>(
          std::max_element(row, row + k) - row);
      row[y] -= 1.0f;
      for (std::int64_t j = 0; j < k; ++j) row[j] /= static_cast<float>(n);
    }
    partial[static_cast<std::size_t>(si)].v = total;
  });
  double total = 0.0;
  for (const Padded<double>& p : partial) total += p.v;
  r.loss = total / static_cast<double>(n);
  return r;
}

}  // namespace qnn::nn
