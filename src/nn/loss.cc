#include "nn/loss.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace qnn::nn {

Tensor softmax(const Tensor& logits) {
  QNN_CHECK(logits.shape().rank() == 2);
  const std::int64_t n = logits.shape()[0], k = logits.shape()[1];
  Tensor probs(logits.shape());
  for (std::int64_t s = 0; s < n; ++s) {
    const float* row = logits.data() + s * k;
    float* out = probs.data() + s * k;
    const float mx = *std::max_element(row, row + k);
    double denom = 0.0;
    for (std::int64_t j = 0; j < k; ++j) {
      out[j] = std::exp(row[j] - mx);
      denom += out[j];
    }
    for (std::int64_t j = 0; j < k; ++j)
      out[j] = static_cast<float>(out[j] / denom);
  }
  return probs;
}

LossResult softmax_cross_entropy(const Tensor& logits,
                                 const std::vector<int>& labels) {
  QNN_CHECK(logits.shape().rank() == 2);
  const std::int64_t n = logits.shape()[0], k = logits.shape()[1];
  QNN_CHECK(static_cast<std::int64_t>(labels.size()) == n);

  LossResult r;
  r.grad_logits = softmax(logits);
  r.predictions.resize(static_cast<std::size_t>(n));

  double total = 0.0;
  for (std::int64_t s = 0; s < n; ++s) {
    float* row = r.grad_logits.data() + s * k;
    const int y = labels[static_cast<std::size_t>(s)];
    QNN_CHECK(y >= 0 && y < k);
    // Clamp to avoid log(0) when the softmax saturates in low precision.
    total += -std::log(std::max(row[y], 1e-12f));
    r.predictions[static_cast<std::size_t>(s)] = static_cast<int>(
        std::max_element(row, row + k) - row);
    row[y] -= 1.0f;
    for (std::int64_t j = 0; j < k; ++j) row[j] /= static_cast<float>(n);
  }
  r.loss = total / static_cast<double>(n);
  return r;
}

}  // namespace qnn::nn
