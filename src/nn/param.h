// A learnable parameter: value plus accumulated gradient.
#pragma once

#include <string>

#include "tensor/tensor.h"

namespace qnn::nn {

struct Param {
  std::string name;
  Tensor value;
  Tensor grad;

  // Default-constructed Param is empty (used for "no bias"); note a
  // rank-0 Shape would give a 1-element tensor, hence the distinction.
  Param() = default;
  explicit Param(std::string n, Shape shape)
      : name(std::move(n)), value(shape), grad(shape) {}

  std::int64_t count() const { return value.count(); }
  void zero_grad() { grad.zero(); }
};

}  // namespace qnn::nn
