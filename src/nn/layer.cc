#include "nn/layer.h"

namespace qnn::nn {

LayerDesc Layer::describe(const Shape& in) const {
  LayerDesc d;
  d.kind = kind();
  d.name = name();
  d.in = in;
  d.out = output_shape(in);
  return d;
}

}  // namespace qnn::nn
