#include "nn/pool.h"

#include <algorithm>
#include <limits>

#include "obs/trace.h"
#include "util/check.h"
#include "util/thread_pool.h"

namespace qnn::nn {

Pool2d::Pool2d(const PoolSpec& spec) : spec_(spec) {
  QNN_CHECK(spec.kernel > 0 && spec.stride > 0 && spec.pad >= 0);
  QNN_CHECK_MSG(spec.pad < spec.kernel, "pool pad must be < kernel");
}

std::int64_t Pool2d::out_extent(std::int64_t in) const {
  // Caffe ceil mode.
  const std::int64_t numer = in + 2 * spec_.pad - spec_.kernel;
  std::int64_t out = (numer + spec_.stride - 1) / spec_.stride + 1;
  // Clip the last window to start inside the (padded) input.
  if (spec_.pad > 0 && (out - 1) * spec_.stride >= in + spec_.pad) --out;
  return out;
}

Shape Pool2d::output_shape(const Shape& in) const {
  QNN_CHECK(in.rank() == 4);
  return Shape{in.n(), in.c(), out_extent(in.h()), out_extent(in.w())};
}

Tensor Pool2d::forward(const Tensor& in) {
  QNN_SPAN("pool_forward", "layer");
  const Shape& s = in.shape();
  const Shape os = output_shape(s);
  Tensor out(os);
  const bool is_max = spec_.mode == PoolMode::kMax;
  if (is_max) argmax_.assign(static_cast<std::size_t>(out.count()), -1);

  const std::int64_t ih = s.h(), iw = s.w(), oh = os.h(), ow = os.w();
  const std::int64_t planes = s.n() * s.c();
  // Every (sample, channel) plane reads and writes disjoint regions, so
  // the plane loop shards freely without changing any result. A plane
  // costs one window scan per output cell.
  const std::int64_t plane_cost =
      oh * ow * spec_.kernel * spec_.kernel;
  parallel_for_shards(planes, kReductionShards, shard_grain(plane_cost),
                      [&](std::size_t, std::int64_t begin,
                          std::int64_t end) {
    for (std::int64_t p = begin; p < end; ++p) {
      const float* plane = in.data() + p * ih * iw;
      const std::int64_t plane_base = p * ih * iw;
      std::int64_t oidx = p * oh * ow;
      for (std::int64_t y = 0; y < oh; ++y) {
        const std::int64_t y0 = std::max<std::int64_t>(
            0, y * spec_.stride - spec_.pad);
        const std::int64_t y1 = std::min<std::int64_t>(
            ih, y * spec_.stride - spec_.pad + spec_.kernel);
        for (std::int64_t x = 0; x < ow; ++x, ++oidx) {
          const std::int64_t x0 = std::max<std::int64_t>(
              0, x * spec_.stride - spec_.pad);
          const std::int64_t x1 = std::min<std::int64_t>(
              iw, x * spec_.stride - spec_.pad + spec_.kernel);
          if (is_max) {
            // Seed with the first in-window cell so the argmax is valid
            // even when the whole window is NaN (e.g. a diverged run).
            float best = plane[y0 * iw + x0];
            std::int64_t best_idx = plane_base + y0 * iw + x0;
            for (std::int64_t yy = y0; yy < y1; ++yy)
              for (std::int64_t xx = x0; xx < x1; ++xx) {
                const float v = plane[yy * iw + xx];
                if (v > best) {
                  best = v;
                  best_idx = plane_base + yy * iw + xx;
                }
              }
            out[oidx] = best;
            argmax_[static_cast<std::size_t>(oidx)] = best_idx;
          } else {
            double acc = 0.0;
            for (std::int64_t yy = y0; yy < y1; ++yy)
              for (std::int64_t xx = x0; xx < x1; ++xx)
                acc += plane[yy * iw + xx];
            const std::int64_t count = (y1 - y0) * (x1 - x0);
            out[oidx] = static_cast<float>(acc / static_cast<double>(count));
          }
        }
      }
    }
  });
  cached_in_shape_ = s;
  return out;
}

Tensor Pool2d::backward(const Tensor& grad_out) {
  QNN_CHECK_MSG(cached_in_shape_.rank() == 4, "backward before forward");
  const Shape& s = cached_in_shape_;
  const Shape os = output_shape(s);
  QNN_CHECK(grad_out.shape() == os);
  Tensor grad_in(s);

  const std::int64_t ih = s.h(), iw = s.w(), oh = os.h(), ow = os.w();
  const std::int64_t planes = s.n() * s.c();

  if (spec_.mode == PoolMode::kMax) {
    // argmax indices stay inside their own plane, so plane sharding
    // keeps the scatter writes disjoint.
    parallel_for_shards(
        planes, kReductionShards, shard_grain(2 * oh * ow),
        [&](std::size_t, std::int64_t begin, std::int64_t end) {
          for (std::int64_t i = begin * oh * ow; i < end * oh * ow; ++i) {
            const std::int64_t src = argmax_[static_cast<std::size_t>(i)];
            QNN_DCHECK(src >= 0);
            grad_in[src] += grad_out[i];
          }
        });
    return grad_in;
  }

  parallel_for_shards(planes, kReductionShards,
                      shard_grain(oh * ow * spec_.kernel * spec_.kernel),
                      [&](std::size_t, std::int64_t begin,
                          std::int64_t end) {
    for (std::int64_t p = begin; p < end; ++p) {
      float* plane = grad_in.data() + p * ih * iw;
      std::int64_t oidx = p * oh * ow;
      for (std::int64_t y = 0; y < oh; ++y) {
        const std::int64_t y0 =
            std::max<std::int64_t>(0, y * spec_.stride - spec_.pad);
        const std::int64_t y1 = std::min<std::int64_t>(
            ih, y * spec_.stride - spec_.pad + spec_.kernel);
        for (std::int64_t x = 0; x < ow; ++x, ++oidx) {
          const std::int64_t x0 =
              std::max<std::int64_t>(0, x * spec_.stride - spec_.pad);
          const std::int64_t x1 = std::min<std::int64_t>(
              iw, x * spec_.stride - spec_.pad + spec_.kernel);
          const float share =
              grad_out[oidx] /
              static_cast<float>((y1 - y0) * (x1 - x0));
          for (std::int64_t yy = y0; yy < y1; ++yy)
            for (std::int64_t xx = x0; xx < x1; ++xx)
              plane[yy * iw + xx] += share;
        }
      }
    }
  });
  return grad_in;
}

LayerDesc Pool2d::describe(const Shape& in) const {
  LayerDesc d = Layer::describe(in);
  // Pooling does comparisons/adds, not MACs; the accelerator model
  // charges these to the (cheap) nonlinearity stage via out-elements.
  d.fan_in = spec_.kernel * spec_.kernel;
  return d;
}

}  // namespace qnn::nn
