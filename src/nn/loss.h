// Softmax + cross-entropy loss (fused for numerical stability).
#pragma once

#include <vector>

#include "tensor/tensor.h"

namespace qnn::nn {

struct LossResult {
  double loss = 0.0;        // mean over the batch
  Tensor grad_logits;       // d(mean loss)/d(logits), same shape as logits
  std::vector<int> predictions;  // argmax per sample
};

// logits: (N, classes); labels.size() == N.
LossResult softmax_cross_entropy(const Tensor& logits,
                                 const std::vector<int>& labels);

// Softmax probabilities (row-wise), exposed for inspection/tests.
Tensor softmax(const Tensor& logits);

}  // namespace qnn::nn
