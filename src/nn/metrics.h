// Classification metrics beyond top-1 accuracy: confusion matrix,
// per-class accuracy, and top-k — used to inspect *how* low-precision
// networks fail (e.g. the paper's SVHN binary collapse is a near-uniform
// confusion, not a biased one).
#pragma once

#include <vector>

#include "data/dataset.h"
#include "nn/network.h"

namespace qnn::nn {

class ConfusionMatrix {
 public:
  explicit ConfusionMatrix(int num_classes);

  void add(int actual, int predicted);

  std::int64_t count(int actual, int predicted) const;
  std::int64_t total() const { return total_; }
  int num_classes() const { return num_classes_; }

  // Top-1 accuracy in percent.
  double accuracy() const;
  // Recall of one class in percent (100 if the class never occurs).
  double per_class_accuracy(int label) const;
  // Mean of per-class accuracies (balanced accuracy).
  double balanced_accuracy() const;

  std::string to_string() const;

 private:
  int num_classes_;
  std::int64_t total_ = 0;
  std::vector<std::int64_t> cells_;  // row = actual, col = predicted
};

struct EvalMetrics {
  ConfusionMatrix confusion;
  double top1 = 0.0;   // percent
  double topk = 0.0;   // percent, k as configured
  double mean_loss = 0.0;
};

// Full evaluation pass with confusion matrix and top-k accuracy.
EvalMetrics evaluate_metrics(Model& model, const data::Dataset& d, int k = 3,
                             std::int64_t batch_size = 64);

// Index of the largest logit in row `row` of a rank-2 (N, classes)
// tensor; ties break to the lowest index. The single prediction rule
// shared by the loss path and the serving layer's per-request labels.
int argmax_row(const Tensor& logits, std::int64_t row);

}  // namespace qnn::nn
