// Layer interface.
//
// Layers own their parameters and cache whatever they need between
// forward and backward (classic define-by-layer training, as in Caffe —
// the framework the paper's evaluation is built on).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "nn/param.h"
#include "tensor/shape.h"
#include "tensor/tensor.h"

namespace qnn::nn {

// Structural summary of one layer instance, consumed by the hardware
// model (src/hw) to schedule the layer onto the accelerator.
struct LayerDesc {
  std::string kind;   // "conv" | "pool_max" | "pool_avg" | "inner_product" | "relu" | ...
  std::string name;
  Shape in;           // per-batch input shape (N = 1 when describing)
  Shape out;
  std::int64_t macs = 0;     // multiply-accumulates per sample
  std::int64_t weights = 0;  // weight count (excluding bias)
  std::int64_t biases = 0;
  std::int64_t fan_in = 0;   // inputs per output neuron (conv: C*KH*KW)
};

class Layer {
 public:
  virtual ~Layer() = default;

  virtual const char* kind() const = 0;
  const std::string& name() const { return name_; }
  void set_name(std::string n) { name_ = std::move(n); }

  // Shape inference without running data.
  virtual Shape output_shape(const Shape& in) const = 0;

  // Computes outputs; must cache context for the subsequent backward.
  virtual Tensor forward(const Tensor& in) = 0;

  // Consumes d(loss)/d(out), accumulates parameter gradients, and
  // returns d(loss)/d(in). Only valid after a forward on the same batch.
  virtual Tensor backward(const Tensor& grad_out) = 0;

  virtual std::vector<Param*> params() { return {}; }

  // Deep copy of this layer (parameters, gradients, cached state). Used
  // to build per-thread network replicas for parallel fault trials.
  // Layers that cannot be copied may return nullptr; Network::clone
  // treats that as a hard error.
  virtual std::unique_ptr<Layer> clone() const { return nullptr; }

  // Train/eval mode switch (only stochastic layers such as Dropout
  // care). nn::train enables it; nn::evaluate disables it.
  virtual void set_training_mode(bool) {}

  virtual LayerDesc describe(const Shape& in) const;

 private:
  std::string name_;
};

using LayerPtr = std::unique_ptr<Layer>;

}  // namespace qnn::nn
