// Mini-batch training and evaluation loops over the Model interface.
#pragma once

#include <functional>

#include "data/augment.h"
#include "data/dataset.h"
#include "nn/network.h"
#include "nn/optimizer.h"

namespace qnn::nn {

struct TrainConfig {
  int epochs = 5;
  std::int64_t batch_size = 32;
  SgdConfig sgd;
  std::uint64_t shuffle_seed = 7;
  bool verbose = false;
  // Training-time augmentation (mirror / pad-crop), off by default.
  data::AugmentConfig augment;
  // Invoked after every optimizer step (QAT uses this to refresh cached
  // quantized views); may be empty.
  std::function<void()> after_step;
};

struct EpochStats {
  double mean_loss = 0.0;
  double train_accuracy = 0.0;  // accuracy over the training pass
};

struct TrainResult {
  std::vector<EpochStats> epochs;
  double final_loss() const {
    return epochs.empty() ? 0.0 : epochs.back().mean_loss;
  }
};

// Trains `model` on `train` with softmax cross-entropy.
TrainResult train(Model& model, const data::Dataset& train,
                  const TrainConfig& config);

// Top-1 accuracy of `model` on `d` (forward only), in percent.
double evaluate(Model& model, const data::Dataset& d,
                std::int64_t batch_size = 64);

}  // namespace qnn::nn
