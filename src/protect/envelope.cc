#include "protect/envelope.h"

#include <algorithm>
#include <cmath>

namespace qnn::protect {
namespace {

// In-envelope replacement for a NaN: the representable value nearest
// zero. Deterministic and magnitude-neutral — a corrupted value carries
// no information, so the least-damaging substitute is the smallest one
// the envelope allows.
float nan_replacement(const SiteEnvelope& e) {
  if (e.lo <= 0.0 && 0.0 <= e.hi) return 0.0f;
  return static_cast<float>(e.lo > 0.0 ? e.lo : e.hi);
}

}  // namespace

void EnvelopeSet::observe(std::size_t site, const float* data,
                          std::int64_t count) {
  if (site >= sites_.size()) sites_.resize(site + 1);
  SiteEnvelope& e = sites_[site];
  for (std::int64_t i = 0; i < count; ++i) {
    const double v = static_cast<double>(data[i]);
    if (!std::isfinite(v)) continue;
    if (!e.valid) {
      e.lo = e.hi = v;
      e.valid = true;
    } else {
      e.lo = std::min(e.lo, v);
      e.hi = std::max(e.hi, v);
    }
  }
}

void EnvelopeSet::expand_margins(double fraction) {
  for (SiteEnvelope& e : sites_) {
    if (!e.valid) continue;
    const double slack = (e.hi - e.lo) * fraction + 1e-6;
    e.lo -= slack;
    e.hi += slack;
  }
}

std::int64_t EnvelopeSet::count_violations(std::size_t site, const float* data,
                                           std::int64_t count) const {
  if (site >= sites_.size() || !sites_[site].valid) return 0;
  const SiteEnvelope& e = sites_[site];
  const double lo = e.lo;
  const double hi = e.hi;
  std::int64_t violations = 0;
  for (std::int64_t i = 0; i < count; ++i) {
    const double v = static_cast<double>(data[i]);
    // NaN fails both comparisons below, so test it explicitly.
    if (std::isnan(v) || v < lo || v > hi) ++violations;
  }
  return violations;
}

std::int64_t EnvelopeSet::clamp(std::size_t site, float* data,
                                std::int64_t count) const {
  if (site >= sites_.size() || !sites_[site].valid) return 0;
  const SiteEnvelope& e = sites_[site];
  const float nan_sub = nan_replacement(e);
  std::int64_t modified = 0;
  // Same double-precision comparisons as count_violations so the two
  // counters agree on which values are out of envelope.
  for (std::int64_t i = 0; i < count; ++i) {
    const double v = static_cast<double>(data[i]);
    if (std::isnan(v)) {
      data[i] = nan_sub;
      ++modified;
    } else if (v < e.lo) {
      data[i] = static_cast<float>(e.lo);
      ++modified;
    } else if (v > e.hi) {
      data[i] = static_cast<float>(e.hi);
      ++modified;
    }
  }
  return modified;
}

}  // namespace qnn::protect
