// ProtectedNetwork: opt-in fault-tolerance wrapper around a
// QuantizedNetwork (DESIGN.md §10).
//
// Three mechanisms compose, selected by ProtectionPolicy:
//
//  * ABFT checksummed GEMM (protect/abft) verifies every forward-path
//    matrix product and transparently re-executes corrupted M-shards;
//  * range-guard envelopes (protect/envelope), calibrated from a clean
//    reference pass, flag activations outside each site's known range;
//  * layer-level redundant re-execution retries a layer whose output
//    violates its envelope up to max_layer_retries times — each retry
//    scrubs the layer's weights from the (ECC-protected) masters and
//    re-draws every fault domain. When every draw violates (at high
//    fault rates a clean draw may not exist), the draws are voted down
//    to their elementwise median — upsets confined to a minority of
//    executions lose the vote — then the layer degrades gracefully by
//    clamping residual violations and raising the `degraded` flag.
//
// The policy lattice orders strictly by intervention:
//   off         — exact pass-through, byte-identical to the unwrapped net
//   detect-only — count envelope violations + ABFT stats, change nothing
//   clamp       — detect, then clamp out-of-envelope values in place
//   retry+clamp — detect, re-execute the layer, clamp only when retries
//                 are exhausted (degraded) — the strongest policy
//
// Every decision is made serially on the calling thread from
// deterministic inputs, so protected runs keep the N-thread == 1-thread
// bit-identity contract (§9) — accuracy, counters, and retry counts are
// all reproducible across thread counts.
#pragma once

#include <cstdint>
#include <string>

#include "protect/abft.h"
#include "protect/envelope.h"
#include "quant/qnetwork.h"

namespace qnn::protect {

enum class ProtectionPolicy : int {
  kOff = 0,
  kDetectOnly = 1,
  kClamp = 2,
  kRetryClamp = 3,
};

// Stable identifiers used in checkpoints, CSV output, and config files.
const char* policy_name(ProtectionPolicy policy);
ProtectionPolicy policy_from_name(const std::string& name);

struct ProtectionConfig {
  ProtectionPolicy policy = ProtectionPolicy::kOff;
  // Layer re-executions per envelope violation (retry+clamp only).
  int max_layer_retries = 2;
  // Envelope widening on each side, as a fraction of the calibrated
  // range (see EnvelopeSet::expand_margins).
  double envelope_margin = 0.05;
  // Verify forward GEMMs with ABFT checksums (any policy but off).
  bool abft = true;
  AbftOptions abft_options;
  // Range guards only see excursions OUTSIDE the clean activation
  // range, and at very coarse data widths nearly every upset lands back
  // inside it (a 4-bit MSB flip moves a value half the grid and stays
  // in-envelope), so envelope detection is structurally blind there.
  // For non-float formats whose data path is this many bits or fewer,
  // retry+clamp escalates to unconditional temporal redundancy: every
  // layer runs 1 + max_layer_retries times and the draws are voted
  // down to their elementwise median. 0 disables the escalation.
  int always_vote_data_bits = 4;

  friend bool operator==(const ProtectionConfig&,
                         const ProtectionConfig&) = default;
};

struct ProtectionCounters {
  std::int64_t values = 0;           // activation values inspected
  std::int64_t out_of_envelope = 0;  // envelope violations observed
  std::int64_t clamped = 0;          // values clamped into envelope
  std::int64_t layer_retries = 0;    // layer re-executions performed
  std::int64_t degraded_forwards = 0;  // forwards that exhausted retries
  AbftCounters abft;

  ProtectionCounters& operator+=(const ProtectionCounters& o);
  friend bool operator==(const ProtectionCounters&,
                         const ProtectionCounters&) = default;
};

class ProtectedNetwork final : public nn::Model {
 public:
  // Wraps `qnet` (not owned; must outlive this object and be calibrated
  // before the first protected forward).
  ProtectedNetwork(quant::QuantizedNetwork& qnet, ProtectionConfig config);

  // Builds the per-site envelopes from a clean forward over `batch`
  // (injection hooks should be cleared first) and applies the configured
  // margin. Per-sample layer outputs are independent of batch
  // composition, so calibrating on the evaluation set guarantees a
  // fault-free forward never violates its envelope.
  void calibrate_envelopes(const Tensor& batch);

  const EnvelopeSet& envelopes() const { return envelopes_; }
  void set_envelopes(EnvelopeSet envelopes) {
    envelopes_ = std::move(envelopes);
  }

  // Model interface. forward() applies the configured policy; backward
  // and parameter access delegate unchanged (protection is an inference
  // mechanism — training runs unprotected).
  Tensor forward(const Tensor& input) override;
  void backward(const Tensor& grad_output) override {
    qnet_.backward(grad_output);
  }
  std::vector<nn::Param*> trainable_params() override {
    return qnet_.trainable_params();
  }
  std::string name() const override;
  void set_training_mode(bool training) override {
    qnet_.set_training_mode(training);
  }

  const ProtectionConfig& config() const { return config_; }
  quant::QuantizedNetwork& wrapped() { return qnet_; }

  // Counters accumulate across forwards until reset_counters().
  const ProtectionCounters& counters() const { return counters_; }
  void reset_counters();

  // True when the most recent forward exhausted its retries and fell
  // back to clamping (retry+clamp only).
  bool last_forward_degraded() const { return last_forward_degraded_; }

 private:
  quant::QuantizedNetwork& qnet_;
  ProtectionConfig config_;
  EnvelopeSet envelopes_;
  ProtectionCounters counters_;
  bool last_forward_degraded_ = false;
};

// Standalone calibration helper: clean forward over `batch` on `qnet`,
// margins applied. Lets campaign code calibrate once and share copies
// across replica wrappers.
EnvelopeSet calibrate_envelopes(quant::QuantizedNetwork& qnet,
                                const Tensor& batch, double margin);

}  // namespace qnn::protect
