// Algorithm-based fault tolerance (ABFT) for the GEMM kernels.
//
// Classic Huang–Abraham checksums, applied per M-shard *around* the
// untouched tensor/gemm kernels: for each block of kGemmBlockM output
// rows, the column sums of C must equal (column sums of the A slice) · B
// up to floating-point rounding. The checksum arithmetic runs in double
// precision, serially, on the calling thread, in shard-index order — so
// enabling verification never perturbs the product bytes and the
// N-thread == 1-thread bit-identity contract (DESIGN.md §9) holds with
// protection on.
//
// On a checksum mismatch the affected shard alone is recomputed with a
// fresh gemm call on the sliced operands, which reproduces the original
// block bytes exactly: the K-chunk plan and its fixed merge tree are a
// pure function of K alone (gemm_k_plan in tensor/gemm.h), so an
// M-sliced re-execution walks the identical canonical order as the
// first pass and a verified retry cannot differ from a clean run by
// merge order. Detection is bounded below by the rounding tolerance:
// corruption smaller than the accumulated float rounding of a K-length
// dot product is indistinguishable from legitimate arithmetic and
// passes unnoticed — by design, since such perturbations are also
// harmless. (The serial-fold bound also covers the fixed-tree order,
// whose accumulated rounding is strictly smaller.)
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

namespace qnn {
class GemmScratch;
}

namespace qnn::protect {

struct AbftOptions {
  // Checksum comparison tolerance, as a multiple of the rigorous
  // worst-case rounding bound eps_f32 * (k + mb) * Σ|a||b|. Values >= 1
  // cannot false-positive on clean arithmetic.
  double tolerance_scale = 2.0;
  // Recomputations attempted per mismatched shard before giving up.
  int max_reexecutions = 2;

  friend bool operator==(const AbftOptions&, const AbftOptions&) = default;
};

struct AbftCounters {
  std::int64_t blocks_checked = 0;   // M-shards verified
  std::int64_t mismatches = 0;       // shards that failed at least once
  std::int64_t reexecutions = 0;     // shard recomputations performed
  std::int64_t unrecovered = 0;      // shards still failing after retries

  bool clean() const { return mismatches == 0 && unrecovered == 0; }
  AbftCounters& operator+=(const AbftCounters& o);
  friend bool operator==(const AbftCounters&, const AbftCounters&) = default;
};

// Test/bench corruption hook: invoked after each (re)computation of rows
// [i0, i0+mb) and before their verification, with `c_rows` pointing at
// row i0 (row stride n). `attempt` is 0 for the initial pass, then 1..N
// for re-executions — a hook that corrupts only at attempt 0 models a
// transient upset; one that always corrupts models a hard fault.
using AbftFaultHook =
    std::function<void(std::int64_t i0, std::int64_t mb, std::int64_t n,
                       float* c_rows, int attempt)>;

// Checksum-verified variants of the two forward-path GEMMs. Results are
// bit-identical to the unverified kernels whenever no corruption occurs
// (and after successful re-execution when it does). `scratch`, when
// given, is forwarded to the product and to every re-execution so
// steady-state layer forwards stop heap-allocating (tensor/gemm.h).
AbftCounters abft_gemm_row_bias(std::int64_t m, std::int64_t n,
                                std::int64_t k, const float* a,
                                const float* b, float* c,
                                const float* row_bias,
                                const AbftOptions& options,
                                const AbftFaultHook& hook = {},
                                GemmScratch* scratch = nullptr);

// B stored [N,K] row-major, per-column bias — InnerProduct's forward.
AbftCounters abft_gemm_bt_col_bias(std::int64_t m, std::int64_t n,
                                   std::int64_t k, const float* a,
                                   const float* b, float* c,
                                   const float* col_bias,
                                   const AbftOptions& options,
                                   const AbftFaultHook& hook = {},
                                   GemmScratch* scratch = nullptr);

// ---------------------------------------------------------------------
// Scope-based dispatch for the inference stack.
//
// Layers call the *_guarded entry points below; they forward to the
// plain kernels unless an AbftScope is active. The scope registers
// itself through ThreadPool's task context, so GEMMs issued from pool
// workers inside the scope (conv's per-sample batch sharding) are
// verified too. Counter accumulation uses relaxed atomics — integer
// sums are order-independent, so totals stay bit-identical across
// thread counts.

namespace detail {
struct AbftContext;
}

class AbftScope {
 public:
  explicit AbftScope(const AbftOptions& options);
  ~AbftScope();

  AbftScope(const AbftScope&) = delete;
  AbftScope& operator=(const AbftScope&) = delete;

  // Snapshot of the counters accumulated so far inside this scope.
  AbftCounters counters() const;

 private:
  std::unique_ptr<detail::AbftContext> impl_;
  void* prev_context_ = nullptr;
};

// Forward to abft_* when an AbftScope is active on this thread (directly
// or inherited through the pool's task context), plain gemm otherwise.
void gemm_row_bias_guarded(std::int64_t m, std::int64_t n, std::int64_t k,
                           const float* a, const float* b, float* c,
                           const float* row_bias,
                           GemmScratch* scratch = nullptr);
void gemm_bt_col_bias_guarded(std::int64_t m, std::int64_t n, std::int64_t k,
                              const float* a, const float* b, float* c,
                              const float* col_bias,
                              GemmScratch* scratch = nullptr);

}  // namespace qnn::protect
