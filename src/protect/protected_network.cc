#include "protect/protected_network.h"

#include <algorithm>
#include <cmath>
#include <optional>
#include <utility>
#include <vector>

#include "obs/trace.h"
#include "util/check.h"

namespace qnn::protect {
namespace {

// Elementwise median across redundant executions of one layer (the
// voting half of retry+clamp). Fault patterns are independent per draw,
// so an upset confined to a minority of executions loses the vote even
// when every individual draw violates its envelope somewhere. NaN sorts
// above every other value, so it wins only when it appears in a
// majority of draws; for an even draw count the upper median is used.
// Serial per element — no ordering freedom, so the result is
// thread-count invariant.
Tensor vote_elementwise(const std::vector<Tensor>& draws) {
  QNN_SPAN_N("vote", "protect",
             static_cast<std::int64_t>(draws.size()));
  Tensor out = draws.front();
  const std::size_t k = draws.size();
  std::vector<const float*> src;
  src.reserve(k);
  for (const Tensor& d : draws) src.push_back(d.data());
  std::vector<float> buf(k);
  float* o = out.data();
  for (std::int64_t j = 0; j < out.count(); ++j) {
    for (std::size_t d = 0; d < k; ++d) buf[d] = src[d][j];
    std::sort(buf.begin(), buf.end(), [](float a, float b) {
      if (std::isnan(a)) return false;
      if (std::isnan(b)) return true;
      return a < b;
    });
    o[j] = buf[k / 2];
  }
  return out;
}

}  // namespace

const char* policy_name(ProtectionPolicy policy) {
  switch (policy) {
    case ProtectionPolicy::kOff:
      return "off";
    case ProtectionPolicy::kDetectOnly:
      return "detect";
    case ProtectionPolicy::kClamp:
      return "clamp";
    case ProtectionPolicy::kRetryClamp:
      return "retry+clamp";
  }
  QNN_CHECK_MSG(false, "unknown ProtectionPolicy "
                           << static_cast<int>(policy));
}

ProtectionPolicy policy_from_name(const std::string& name) {
  if (name == "off") return ProtectionPolicy::kOff;
  if (name == "detect") return ProtectionPolicy::kDetectOnly;
  if (name == "clamp") return ProtectionPolicy::kClamp;
  if (name == "retry+clamp") return ProtectionPolicy::kRetryClamp;
  QNN_CHECK_MSG(false, "unknown protection policy name \"" << name << '"');
}

ProtectionCounters& ProtectionCounters::operator+=(
    const ProtectionCounters& o) {
  values += o.values;
  out_of_envelope += o.out_of_envelope;
  clamped += o.clamped;
  layer_retries += o.layer_retries;
  degraded_forwards += o.degraded_forwards;
  abft += o.abft;
  return *this;
}

ProtectedNetwork::ProtectedNetwork(quant::QuantizedNetwork& qnet,
                                   ProtectionConfig config)
    : qnet_(qnet), config_(config) {}

void ProtectedNetwork::calibrate_envelopes(const Tensor& batch) {
  envelopes_ = protect::calibrate_envelopes(qnet_, batch,
                                            config_.envelope_margin);
}

EnvelopeSet calibrate_envelopes(quant::QuantizedNetwork& qnet,
                                const Tensor& batch, double margin) {
  EnvelopeSet envelopes;
  qnet.forward_observed(batch,
                        [&](std::size_t site, const Tensor& activations) {
                          envelopes.observe(site, activations.data(),
                                            activations.count());
                        });
  qnet.restore_masters();
  envelopes.expand_margins(margin);
  return envelopes;
}

std::string ProtectedNetwork::name() const {
  return qnet_.name() + "+" + policy_name(config_.policy);
}

void ProtectedNetwork::reset_counters() { counters_ = ProtectionCounters{}; }

Tensor ProtectedNetwork::forward(const Tensor& input) {
  QNN_SPAN_N("protected_forward", "protect", input.shape()[0]);
  if (config_.policy == ProtectionPolicy::kOff) {
    // Exact pass-through: no scope, no envelope checks, no counters.
    last_forward_degraded_ = false;
    return qnet_.forward(input);
  }
  QNN_CHECK_MSG(!envelopes_.empty(),
                "ProtectedNetwork::forward before calibrate_envelopes()");
  last_forward_degraded_ = false;

  // ABFT verification covers every forward-path GEMM issued below,
  // including those dispatched to pool workers (conv batch shards).
  std::optional<AbftScope> abft;
  if (config_.abft) abft.emplace(config_.abft_options);

  Tensor x = qnet_.forward_prologue(input);
  // Site 0 is the quantized input — there is no layer to re-execute, so
  // the strongest available response is clamping.
  {
    const std::int64_t violations =
        envelopes_.count_violations(0, x.data(), x.count());
    counters_.values += x.count();
    counters_.out_of_envelope += violations;
    if (violations > 0 && config_.policy != ProtectionPolicy::kDetectOnly)
      counters_.clamped += envelopes_.clamp(0, x.data(), x.count());
  }

  // At data widths where range detection is structurally blind (see
  // ProtectionConfig::always_vote_data_bits), retry+clamp cannot wait
  // for an envelope violation that will never come — every layer is
  // executed redundantly and voted instead.
  const bool always_vote =
      config_.policy == ProtectionPolicy::kRetryClamp &&
      config_.max_layer_retries > 0 && !qnet_.config().is_float() &&
      qnet_.config().input_bits <= config_.always_vote_data_bits;

  const std::size_t layers = qnet_.network().num_layers();
  for (std::size_t i = 0; i < layers; ++i) {
    const std::size_t site = i + 1;
    if (always_vote) {
      std::vector<Tensor> draws;
      draws.reserve(static_cast<std::size_t>(config_.max_layer_retries) + 1);
      for (int a = 0; a <= config_.max_layer_retries; ++a) {
        if (a > 0) {
          QNN_SPAN_N("layer_retry", "protect",
                     static_cast<std::int64_t>(i));
          ++counters_.layer_retries;
          qnet_.rescrub_layer_params(i);
        }
        draws.push_back(qnet_.forward_step(i, x));
        counters_.values += draws.back().count();
        counters_.out_of_envelope += envelopes_.count_violations(
            site, draws.back().data(), draws.back().count());
      }
      Tensor y = vote_elementwise(draws);
      const std::int64_t voted_violations =
          envelopes_.count_violations(site, y.data(), y.count());
      if (voted_violations > 0) {
        counters_.clamped += envelopes_.clamp(site, y.data(), y.count());
        last_forward_degraded_ = true;
      }
      x = std::move(y);
      continue;
    }
    int attempt = 0;
    std::vector<Tensor> draws;  // retry+clamp: kept for the exhaustion vote
    for (;;) {
      Tensor y = qnet_.forward_step(i, x);
      const std::int64_t violations =
          envelopes_.count_violations(site, y.data(), y.count());
      counters_.values += y.count();
      counters_.out_of_envelope += violations;
      if (violations == 0) {
        x = std::move(y);
        break;
      }
      if (config_.policy == ProtectionPolicy::kRetryClamp &&
          attempt < config_.max_layer_retries) {
        // Scrub the layer's weights from the (ECC-protected) masters,
        // then re-execute: the re-fetch re-draws weight-memory faults
        // and the re-execution re-draws accumulator/feature-map faults.
        // Without the scrub a weight upset would defeat every retry
        // (forward_step reuses the quantized image from the prologue).
        QNN_SPAN_N("layer_retry", "protect", static_cast<std::int64_t>(i));
        draws.push_back(std::move(y));
        ++attempt;
        ++counters_.layer_retries;
        qnet_.rescrub_layer_params(i);
        continue;
      }
      if (config_.policy != ProtectionPolicy::kDetectOnly) {
        if (!draws.empty()) {
          // Every redundant execution violated its envelope (at high
          // fault rates a violation-free draw may not exist). Vote the
          // draws down to their elementwise median, then clamp whatever
          // corruption survives the vote.
          draws.push_back(std::move(y));
          y = vote_elementwise(draws);
        }
        counters_.clamped += envelopes_.clamp(site, y.data(), y.count());
        if (config_.policy == ProtectionPolicy::kRetryClamp)
          last_forward_degraded_ = true;
      }
      x = std::move(y);
      break;
    }
  }
  if (last_forward_degraded_) ++counters_.degraded_forwards;
  if (abft) counters_.abft += abft->counters();
  return x;
}

}  // namespace qnn::protect
