// Per-site activation range envelopes.
//
// An envelope [lo, hi] records the value range a quantization site (the
// network input plus each layer output — the same site numbering as
// QuantizedNetwork's guard counters) produced during a clean calibration
// pass, widened by a safety margin. At inference time a value outside
// its site envelope is evidence of corruption: transient bit-flips in
// high-order or exponent bits land far outside the calibrated range,
// while legitimate activations stay inside it by construction (the
// calibration pass observes the same deterministic forward the protected
// run replays).
//
// This header is a leaf (no nn/ or quant/ includes) so nn::serialize can
// embed envelopes in the snapshot stream without an include cycle.
#pragma once

#include <cstdint>
#include <vector>

namespace qnn::protect {

struct SiteEnvelope {
  double lo = 0.0;
  double hi = 0.0;
  bool valid = false;  // false until at least one value was observed

  friend bool operator==(const SiteEnvelope&, const SiteEnvelope&) = default;
};

// Ordered collection of per-site envelopes. Sites grow on demand during
// observation; querying a site that was never observed (or is beyond the
// calibrated range) is a no-op — nothing is flagged or clamped.
class EnvelopeSet {
 public:
  EnvelopeSet() = default;
  explicit EnvelopeSet(std::vector<SiteEnvelope> sites)
      : sites_(std::move(sites)) {}

  bool empty() const { return sites_.empty(); }
  std::size_t size() const { return sites_.size(); }
  const std::vector<SiteEnvelope>& sites() const { return sites_; }

  // Folds [data, data+count) into site's min/max. NaN/Inf values are
  // ignored (a calibration pass is expected to be clean; skipping keeps
  // a pathological calibration from producing an infinite envelope).
  void observe(std::size_t site, const float* data, std::int64_t count);

  // Widens every valid envelope by `fraction` of its range on each side
  // (plus a tiny absolute slack so a degenerate lo == hi envelope does
  // not flag the very value it calibrated on).
  void expand_margins(double fraction);

  // Number of values in [data, data+count) outside the site envelope.
  // NaN counts as a violation; so do ±Inf (they compare outside any
  // finite envelope). Returns 0 for unknown or invalid sites.
  std::int64_t count_violations(std::size_t site, const float* data,
                                std::int64_t count) const;

  // Clamps values into the site envelope in place: v < lo -> lo,
  // v > hi -> hi, NaN -> the in-envelope value nearest zero. Returns the
  // number of values modified. No-op for unknown or invalid sites.
  std::int64_t clamp(std::size_t site, float* data, std::int64_t count) const;

  friend bool operator==(const EnvelopeSet&, const EnvelopeSet&) = default;

 private:
  std::vector<SiteEnvelope> sites_;
};

}  // namespace qnn::protect
