#include "protect/abft.h"

#include <atomic>
#include <cmath>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "tensor/gemm.h"
#include "util/thread_pool.h"

namespace qnn::protect {

AbftCounters& AbftCounters::operator+=(const AbftCounters& o) {
  blocks_checked += o.blocks_checked;
  mismatches += o.mismatches;
  reexecutions += o.reexecutions;
  unrecovered += o.unrecovered;
  return *this;
}

namespace detail {

// Shared state behind an AbftScope, reachable from any thread executing
// inside the scope via ThreadPool::task_context(). The context slot is
// currently owned exclusively by AbftScope (see thread_pool.h); relaxed
// atomics suffice because integer sums are order-independent, keeping
// totals bit-identical across thread counts.
struct AbftContext {
  AbftOptions options;
  std::atomic<std::int64_t> blocks_checked{0};
  std::atomic<std::int64_t> mismatches{0};
  std::atomic<std::int64_t> reexecutions{0};
  std::atomic<std::int64_t> unrecovered{0};

  void add(const AbftCounters& c) {
    blocks_checked.fetch_add(c.blocks_checked, std::memory_order_relaxed);
    mismatches.fetch_add(c.mismatches, std::memory_order_relaxed);
    reexecutions.fetch_add(c.reexecutions, std::memory_order_relaxed);
    unrecovered.fetch_add(c.unrecovered, std::memory_order_relaxed);
  }

  AbftCounters snapshot() const {
    AbftCounters c;
    c.blocks_checked = blocks_checked.load(std::memory_order_relaxed);
    c.mismatches = mismatches.load(std::memory_order_relaxed);
    c.reexecutions = reexecutions.load(std::memory_order_relaxed);
    c.unrecovered = unrecovered.load(std::memory_order_relaxed);
    return c;
  }
};

}  // namespace detail

namespace {

// Unit roundoff of float32 (half of FLT_EPSILON).
constexpr double kUnitRoundoff = 1.0 / 16777216.0;  // 2^-24

// Huang–Abraham column-sum check for output rows [i0, i0+mb):
//
//   got[j]    = Σ_i C[i0+i, j]                       (the shard's column sums)
//   expect[j] = Σ_k' r[k']·B[k',j] + bias terms      (checksum-row product)
//   r[k']     = Σ_i A[i0+i, k']
//
// both accumulated in double. The two agree exactly in real arithmetic;
// in float32 they differ by at most the accumulated rounding of the mb
// K-length dot products, bounded by u·(k+mb+slack)·mag[j] where mag[j]
// aggregates Σ|a||b| (+ |bias|) for column j. `b_at(k', j)` abstracts
// over B's storage layout ([K,N] plain vs [N,K] transposed).
template <typename BAt>
bool shard_checksum_ok(std::int64_t i0, std::int64_t mb, std::int64_t n,
                       std::int64_t k, const float* a, BAt&& b_at,
                       const float* c, const float* row_bias,
                       const float* col_bias, double tolerance_scale,
                       std::vector<double>& r, std::vector<double>& ra) {
  for (std::int64_t kp = 0; kp < k; ++kp) r[kp] = ra[kp] = 0.0;
  for (std::int64_t i = 0; i < mb; ++i) {
    const float* arow = a + (i0 + i) * k;
    for (std::int64_t kp = 0; kp < k; ++kp) {
      const double v = static_cast<double>(arow[kp]);
      r[kp] += v;
      ra[kp] += std::abs(v);
    }
  }
  double bias_sum = 0.0;
  double bias_mag = 0.0;
  if (row_bias != nullptr) {
    for (std::int64_t i = 0; i < mb; ++i) {
      const double v = static_cast<double>(row_bias[i0 + i]);
      bias_sum += v;
      bias_mag += std::abs(v);
    }
  }
  const double tol_factor = tolerance_scale * kUnitRoundoff *
                            static_cast<double>(k + mb + 8);
  for (std::int64_t j = 0; j < n; ++j) {
    double got = 0.0;
    for (std::int64_t i = 0; i < mb; ++i)
      got += static_cast<double>(c[(i0 + i) * n + j]);
    double expect = bias_sum;
    double mag = bias_mag;
    for (std::int64_t kp = 0; kp < k; ++kp) {
      const double bv = b_at(kp, j);
      expect += r[kp] * bv;
      mag += ra[kp] * std::abs(bv);
    }
    if (col_bias != nullptr) {
      const double cb = static_cast<double>(col_bias[j]);
      expect += static_cast<double>(mb) * cb;
      mag += static_cast<double>(mb) * std::abs(cb);
    }
    const double tol = tol_factor * mag + 1e-300;
    // A NaN/Inf in `got` fails this comparison and flags the shard.
    if (!(std::abs(got - expect) <= tol)) return false;
  }
  return true;
}

// Shard loop shared by both variants: verify each kGemmBlockM-row shard
// in order, re-executing mismatched shards via `recompute(i0, mb)` up to
// the retry budget. Runs serially on the calling thread, after the
// (possibly parallel) full-product computation — verification order and
// all checksum arithmetic are independent of the thread count.
// Process-wide mirror of ABFT activity for RunReport (see the guard
// metrics in quant/qnetwork.cc for the rationale).
struct AbftMetrics {
  obs::Counter blocks_checked, mismatches, reexecutions, unrecovered;
};

AbftMetrics& abft_metrics() {
  obs::Registry& r = obs::Registry::global();
  static AbftMetrics m{r.counter("abft.blocks_checked"),
                       r.counter("abft.mismatches"),
                       r.counter("abft.reexecutions"),
                       r.counter("abft.unrecovered")};
  return m;
}

template <typename BAt, typename Recompute>
AbftCounters verify_shards(std::int64_t m, std::int64_t n, std::int64_t k,
                           const float* a, BAt&& b_at, float* c,
                           const float* row_bias, const float* col_bias,
                           const AbftOptions& options,
                           const AbftFaultHook& hook, Recompute&& recompute) {
  QNN_SPAN_N("abft_verify", "protect", m);
  AbftCounters counters;
  std::vector<double> r(static_cast<std::size_t>(k));
  std::vector<double> ra(static_cast<std::size_t>(k));
  for (std::int64_t i0 = 0; i0 < m; i0 += kGemmBlockM) {
    const std::int64_t mb = std::min(kGemmBlockM, m - i0);
    ++counters.blocks_checked;
    if (hook) hook(i0, mb, n, c + i0 * n, /*attempt=*/0);
    bool ok = shard_checksum_ok(i0, mb, n, k, a, b_at, c, row_bias, col_bias,
                                options.tolerance_scale, r, ra);
    if (ok) continue;
    ++counters.mismatches;
    int attempt = 0;
    while (!ok && attempt < options.max_reexecutions) {
      ++attempt;
      ++counters.reexecutions;
      {
        QNN_SPAN_N("abft_reexec", "protect", i0);
        recompute(i0, mb);
      }
      if (hook) hook(i0, mb, n, c + i0 * n, attempt);
      ok = shard_checksum_ok(i0, mb, n, k, a, b_at, c, row_bias, col_bias,
                             options.tolerance_scale, r, ra);
    }
    if (!ok) ++counters.unrecovered;
  }
  AbftMetrics& am = abft_metrics();
  am.blocks_checked.add(counters.blocks_checked);
  am.mismatches.add(counters.mismatches);
  am.reexecutions.add(counters.reexecutions);
  am.unrecovered.add(counters.unrecovered);
  return counters;
}

}  // namespace

AbftCounters abft_gemm_row_bias(std::int64_t m, std::int64_t n,
                                std::int64_t k, const float* a,
                                const float* b, float* c,
                                const float* row_bias,
                                const AbftOptions& options,
                                const AbftFaultHook& hook,
                                GemmScratch* scratch) {
  gemm_row_bias(m, n, k, a, b, c, row_bias, scratch);
  const auto b_at = [b, n](std::int64_t kp, std::int64_t j) {
    return static_cast<double>(b[kp * n + j]);
  };
  // Re-executing rows [i0, i0+mb) as a fresh gemm on the sliced operands
  // reproduces the original block bytes exactly: the K-chunk plan and
  // its merge tree depend only on K (gemm_k_plan), which the slice
  // shares with the full product.
  const auto recompute = [&](std::int64_t i0, std::int64_t mb) {
    gemm_row_bias(mb, n, k, a + i0 * k, b, c + i0 * n,
                  row_bias != nullptr ? row_bias + i0 : nullptr, scratch);
  };
  return verify_shards(m, n, k, a, b_at, c, row_bias, /*col_bias=*/nullptr,
                       options, hook, recompute);
}

AbftCounters abft_gemm_bt_col_bias(std::int64_t m, std::int64_t n,
                                   std::int64_t k, const float* a,
                                   const float* b, float* c,
                                   const float* col_bias,
                                   const AbftOptions& options,
                                   const AbftFaultHook& hook,
                                   GemmScratch* scratch) {
  gemm_bt_col_bias(m, n, k, a, b, c, col_bias, scratch);
  // B is stored [N,K] row-major; verify against it directly rather than
  // materializing the transpose a second time.
  const auto b_at = [b, k](std::int64_t kp, std::int64_t j) {
    return static_cast<double>(b[j * k + kp]);
  };
  const auto recompute = [&](std::int64_t i0, std::int64_t mb) {
    gemm_bt_col_bias(mb, n, k, a + i0 * k, b, c + i0 * n, col_bias,
                     scratch);
  };
  return verify_shards(m, n, k, a, b_at, c, /*row_bias=*/nullptr, col_bias,
                       options, hook, recompute);
}

AbftScope::AbftScope(const AbftOptions& options)
    : impl_(std::make_unique<detail::AbftContext>()) {
  impl_->options = options;
  prev_context_ = ThreadPool::task_context();
  ThreadPool::set_task_context(impl_.get());
}

AbftScope::~AbftScope() { ThreadPool::set_task_context(prev_context_); }

AbftCounters AbftScope::counters() const { return impl_->snapshot(); }

namespace {

detail::AbftContext* current_abft_context() {
  return static_cast<detail::AbftContext*>(ThreadPool::task_context());
}

}  // namespace

void gemm_row_bias_guarded(std::int64_t m, std::int64_t n, std::int64_t k,
                           const float* a, const float* b, float* c,
                           const float* row_bias, GemmScratch* scratch) {
  detail::AbftContext* ctx = current_abft_context();
  if (ctx == nullptr) {
    gemm_row_bias(m, n, k, a, b, c, row_bias, scratch);
    return;
  }
  ctx->add(abft_gemm_row_bias(m, n, k, a, b, c, row_bias, ctx->options, {},
                              scratch));
}

void gemm_bt_col_bias_guarded(std::int64_t m, std::int64_t n, std::int64_t k,
                              const float* a, const float* b, float* c,
                              const float* col_bias, GemmScratch* scratch) {
  detail::AbftContext* ctx = current_abft_context();
  if (ctx == nullptr) {
    gemm_bt_col_bias(m, n, k, a, b, c, col_bias, scratch);
    return;
  }
  ctx->add(abft_gemm_bt_col_bias(m, n, k, a, b, c, col_bias, ctx->options,
                                 {}, scratch));
}

}  // namespace qnn::protect
