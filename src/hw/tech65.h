// Technology constants for the analytical 65 nm hardware model.
//
// The paper synthesizes its accelerator with Synopsys Design Compiler on
// a 65 nm industrial library at 250 MHz; we cannot run synthesis here, so
// src/hw is an *analytical* model: structural bit/gate counts per
// component, multiplied by the per-unit area/power constants below.
//
// CALIBRATION (DESIGN.md §3, §5.6): the constants were fitted once
// against the published Table III — the memory term from the observed
// linear-in-bits area scaling of the fixed-point rows (which implies
// ≈19.5 µm²/bit, i.e. flip-flop-based buffers, consistent with DC
// synthesis without SRAM macros), the multiplier/linear/constant logic
// terms from a quadratic fit over the (32,16,8,4) fixed-point rows. The
// model then *predicts* all seven Table III rows, the Fig. 3 breakdowns,
// and every energy number in Tables IV/V. tests/hw_calibration_test.cc
// asserts the predictions stay within tolerance of the published values.
#pragma once

namespace qnn::hw {

struct Tech65 {
  // --- Area (µm²) -------------------------------------------------------
  // Buffer storage cell incl. addressing/periphery overhead, per bit.
  double mem_area_per_bit = 19.5;
  // Array multiplier, per (bit × bit) of the partial-product array.
  double mult_area_per_bit2 = 4.98;
  // Ripple/tree adder, per result bit.
  double adder_area_per_bit = 22.0;
  // Pipeline / IO register, per bit.
  double reg_area_per_bit = 18.0;
  // One 2:1 mux (barrel-shifter stage cell / sign-mux), per bit.
  double mux_area_per_bit = 6.5;
  // Nonlinearity unit (piecewise-linear sigmoid/ReLU block), per neuron.
  double nonlin_area_per_neuron = 900.0;
  // IEEE single-precision functional units (per instance).
  double fp32_mult_area = 9500.0;
  double fp32_add_area = 5600.0;
  // Fixed control overhead (FSM, DMA engines, decoders), per accelerator.
  double control_area = 13000.0;
  // Clock/buffer/inverter tree, as a fraction of everything else.
  double bufinv_area_fraction = 0.055;

  // --- Power (mW per mm², at 250 MHz, nominal corner) -------------------
  double mem_power_density = 66.0;
  double reg_power_density = 145.0;
  double comb_power_density = 120.0;
  double bufinv_power_density = 200.0;

  // --- Timing ------------------------------------------------------------
  double clock_hz = 250e6;  // paper §V-A
};

// The single calibrated instance used by default everywhere.
inline const Tech65& default_tech() {
  static const Tech65 tech{};
  return tech;
}

}  // namespace qnn::hw
