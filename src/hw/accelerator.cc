#include "hw/accelerator.h"

#include <algorithm>
#include <sstream>

#include "hw/logic_model.h"
#include "util/check.h"

namespace qnn::hw {

using quant::PrecisionKind;

Accelerator::Accelerator(const AcceleratorConfig& config)
    : config_(config), metrics_(compute_metrics()) {}

BufferBits Accelerator::buffer_bits() const {
  const auto& c = config_;
  const int in_bits = c.precision.input_bits;
  const int w_bits = c.precision.weight_bits;
  BufferBits b;
  // Bin: each entry feeds the Ts synapse inputs of a cycle.
  b.bin = static_cast<std::int64_t>(c.bin_entries) *
          c.synapses_per_neuron * in_bits;
  // Bout: partial/final outputs of the Tn neurons, at data precision.
  b.bout = static_cast<std::int64_t>(c.bout_entries) * c.neurons * in_bits;
  // Sb: a full Tn×Ts weight tile per entry.
  b.sb = static_cast<std::int64_t>(c.sb_entries) * c.neurons *
         c.synapses_per_neuron * w_bits;
  return b;
}

int Accelerator::product_bits() const {
  const int in = config_.precision.input_bits;
  const int w = config_.precision.weight_bits;
  switch (config_.precision.kind) {
    case PrecisionKind::kFloat:
      return 32;  // FP32 product stays one word
    case PrecisionKind::kFixed:
      return w + in;
    case PrecisionKind::kPow2:
      // Right-shift (negative exponent) architecture: weights are
      // magnitudes ≤ 2^0, so the shifter moves data right and the
      // product needs only guard bits (Lin et al.'s shift realization).
      return in + 2;
    case PrecisionKind::kBinary:
      return in + 1;  // conditional negate
  }
  return in;
}

int Accelerator::accumulator_bits() const {
  // Adder tree over Ts leaves adds log2(Ts) carry bits.
  int log2_ts = 0;
  while ((1 << log2_ts) < config_.synapses_per_neuron) ++log2_ts;
  return product_bits() + log2_ts;
}

DesignMetrics Accelerator::compute_metrics() const {
  const auto& c = config_;
  const Tech65& t = c.tech;
  const int tn = c.neurons, ts = c.synapses_per_neuron;
  const int lanes = tn * ts;
  const int in_bits = c.precision.input_bits;
  const int w_bits = c.precision.weight_bits;
  const int prod = product_bits();
  const int acc = accumulator_bits();

  DesignMetrics m;

  // ---- Memory: the three buffer subsystems --------------------------
  m.area_um2.memory =
      t.mem_area_per_bit * static_cast<double>(buffer_bits().total());

  // ---- Registers -----------------------------------------------------
  double reg_bits = 0;
  if (c.pipeline_depth() == 3) {
    // Stage-1 -> stage-2 product registers (absent when the binary net
    // merges WB into the adder tree, paper §IV-A4).
    reg_bits += static_cast<double>(lanes) * prod;
  }
  // Stage-2 -> stage-3 accumulator registers.
  reg_bits += static_cast<double>(tn) * acc;
  // Buffer IO latches: one Bin read port (Ts words), one Sb read port
  // (Tn×Ts words), one Bout write port (Tn words).
  reg_bits += static_cast<double>(ts) * in_bits +
              static_cast<double>(lanes) * w_bits +
              static_cast<double>(tn) * in_bits;
  m.area_um2.registers = register_area(t, static_cast<int>(reg_bits));

  // ---- Combinational logic -------------------------------------------
  double wb_area = 0;  // the precision-dependent weight-block stage
  switch (c.precision.kind) {
    case PrecisionKind::kFloat:
      wb_area = static_cast<double>(lanes) * t.fp32_mult_area;
      break;
    case PrecisionKind::kFixed:
      wb_area = static_cast<double>(lanes) *
                int_multiplier_area(t, w_bits, in_bits);
      break;
    case PrecisionKind::kPow2:
      // Shift by the (w_bits - 1)-bit exponent code.
      wb_area = static_cast<double>(lanes) *
                barrel_shifter_area(t, in_bits, std::max(w_bits - 1, 1));
      break;
    case PrecisionKind::kBinary:
      wb_area = static_cast<double>(lanes) * sign_negate_area(t, in_bits);
      break;
  }

  double tree_area = 0;
  double accum_area = 0;
  if (c.precision.kind == PrecisionKind::kFloat) {
    tree_area = static_cast<double>(tn) * (ts - 1) * t.fp32_add_area;
    accum_area = static_cast<double>(tn) * t.fp32_add_area;
  } else {
    tree_area = static_cast<double>(tn) * adder_tree_area(t, ts, prod);
    accum_area = static_cast<double>(tn) * adder_area(t, acc);
  }
  const double nonlin_area =
      static_cast<double>(tn) * t.nonlin_area_per_neuron;
  m.area_um2.combinational =
      wb_area + tree_area + accum_area + nonlin_area + t.control_area;

  // ---- Buffer/inverter (clock tree etc.) ------------------------------
  m.area_um2.buf_inv = t.bufinv_area_fraction *
                       (m.area_um2.memory + m.area_um2.registers +
                        m.area_um2.combinational);

  // ---- Power: per-class density × area --------------------------------
  m.power_mw.memory = m.area_um2.memory / 1e6 * t.mem_power_density;
  m.power_mw.registers = m.area_um2.registers / 1e6 * t.reg_power_density;
  m.power_mw.combinational =
      m.area_um2.combinational / 1e6 * t.comb_power_density;
  m.power_mw.buf_inv = m.area_um2.buf_inv / 1e6 * t.bufinv_power_density;
  return m;
}

std::string Accelerator::describe() const {
  std::ostringstream os;
  os << "accelerator[" << config_.precision.label() << ", " << config_.neurons
     << 'x' << config_.synapses_per_neuron << ", "
     << config_.tech.clock_hz / 1e6 << " MHz]: area=" << area_mm2()
     << " mm^2, power=" << power_mw() << " mW";
  return os.str();
}

double saving_percent(double baseline, double x) {
  QNN_CHECK(baseline > 0);
  return 100.0 * (1.0 - x / baseline);
}

}  // namespace qnn::hw
