#include "hw/nfu_sim.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "fixed/fixed_arith.h"
#include "fixed/plan_sigmoid.h"
#include "nn/activation.h"
#include "nn/conv.h"
#include "nn/inner_product.h"
#include "nn/pool.h"
#include "util/check.h"

namespace qnn::hw {
namespace {

std::int64_t saturate(std::int64_t raw, const FixedPointFormat& f) {
  return std::clamp(raw, f.raw_min(), f.raw_max());
}

// The three weight-block realizations of paper Fig. 2.
enum class WbKind { kMultiplier, kShifter, kSignMux };

}  // namespace

Tensor RawTensor::decode() const {
  Tensor t(shape);
  for (std::int64_t i = 0; i < count(); ++i)
    t[i] = static_cast<float>(format.from_raw(raw[static_cast<std::size_t>(i)]));
  return t;
}

RawTensor encode_tensor(const Tensor& t, const FixedPointFormat& format) {
  RawTensor r;
  r.shape = t.shape();
  r.format = format;
  r.raw.resize(static_cast<std::size_t>(t.count()));
  for (std::int64_t i = 0; i < t.count(); ++i)
    r.raw[static_cast<std::size_t>(i)] = format.to_raw(t[i]);
  return r;
}

// ----------------------------------------------------------------------
// Stages

struct NfuSimulator::Stage {
  virtual ~Stage() = default;
  virtual RawTensor run(const RawTensor& in) const = 0;
};

namespace {

// Requantizes a raw word from `from_frac` into `format`, optionally
// applying a real-valued scale (the binary net's folded multiplier).
std::int64_t requantize(std::int64_t acc, int from_frac, double scale,
                        const FixedPointFormat& format) {
  if (scale == 1.0) {
    return saturate(
        shift_raw_rounded(acc, from_frac, format.frac_bits()), format);
  }
  const double value = static_cast<double>(acc) *
                       std::ldexp(1.0, -from_frac) * scale;
  return format.to_raw(value);
}

// Shared weight storage for conv/ip stages.
struct Bank {
  WbKind kind = WbKind::kMultiplier;
  // kMultiplier only: the (possibly approximate) multiplier circuit.
  MultiplyFn mul = [](std::int64_t a, std::int64_t b) { return a * b; };
  // kMultiplier: raw weight words. kShifter: signed exponents, with
  // sign_mask holding the weight signs and zero_mask flagging exact-zero
  // weights. kSignMux: +1/-1 signs.
  std::vector<std::int64_t> words;
  std::vector<std::int8_t> sign;   // kShifter: +1/-1
  std::vector<std::int8_t> zero;   // kShifter: weight == 0
  int weight_frac = 0;
  int headroom = 0;
  double binary_scale = 1.0;
  std::vector<std::int64_t> bias;  // raw in bias_frac
  int bias_frac = 0;
  bool has_bias = false;

  int acc_frac(int data_frac) const {
    switch (kind) {
      case WbKind::kMultiplier: return data_frac + weight_frac;
      case WbKind::kShifter: return data_frac + headroom;
      case WbKind::kSignMux: return data_frac;
    }
    return data_frac;
  }

  std::int64_t product(std::size_t i, std::int64_t data_raw) const {
    switch (kind) {
      case WbKind::kMultiplier:
        return mul(words[i], data_raw);
      case WbKind::kShifter: {
        if (zero[i]) return 0;
        const int shift = headroom + static_cast<int>(words[i]);
        QNN_DCHECK(shift >= 0 && shift < 62);
        const std::int64_t p = data_raw << shift;
        return sign[i] > 0 ? p : -p;
      }
      case WbKind::kSignMux:
        return words[i] > 0 ? data_raw : -data_raw;
    }
    return 0;
  }

  // Bias term aligned to the accumulator fraction.
  std::int64_t bias_term(std::size_t channel, int acc_frac_bits) const {
    if (!has_bias) return 0;
    return shift_raw_rounded(bias[channel], bias_frac, acc_frac_bits);
  }
};

// Builds a Bank from the live (quantized) values of a parameter.
Bank make_bank(quant::PrecisionKind kind, const Tensor& qweights,
               const quant::ValueQuantizer& wq, const Tensor* qbias,
               const quant::ValueQuantizer* bq,
               const ApproxMultSpec& multiplier) {
  Bank bank;
  const std::size_t n = static_cast<std::size_t>(qweights.count());
  switch (kind) {
    case quant::PrecisionKind::kFixed: {
      bank.kind = WbKind::kMultiplier;
      bank.mul = make_multiplier(multiplier);
      const auto& fq = dynamic_cast<const quant::FixedQuantizer&>(wq);
      QNN_CHECK(fq.format().has_value());
      bank.weight_frac = fq.format()->frac_bits();
      bank.words.resize(n);
      for (std::size_t i = 0; i < n; ++i)
        bank.words[i] =
            fq.format()->to_raw(static_cast<double>(qweights[static_cast<std::int64_t>(i)]));
      break;
    }
    case quant::PrecisionKind::kPow2: {
      bank.kind = WbKind::kShifter;
      bank.words.resize(n);
      bank.sign.resize(n);
      bank.zero.resize(n);
      int min_exp = 0;
      for (std::size_t i = 0; i < n; ++i) {
        const double v = qweights[static_cast<std::int64_t>(i)];
        if (v == 0.0) {
          bank.zero[i] = 1;
          bank.sign[i] = 1;
          bank.words[i] = 0;
          continue;
        }
        bank.zero[i] = 0;
        bank.sign[i] = v > 0 ? 1 : -1;
        const int e = static_cast<int>(
            std::lround(std::log2(std::fabs(static_cast<double>(v)))));
        bank.words[i] = e;
        min_exp = std::min(min_exp, e);
      }
      bank.headroom = -min_exp;
      break;
    }
    case quant::PrecisionKind::kBinary: {
      // Quantized binary weights are ±scale with one scale per tensor;
      // the simulator stores signs and folds the scale into requant.
      bank.kind = WbKind::kSignMux;
      bank.words.resize(n);
      for (std::size_t i = 0; i < n; ++i)
        bank.words[i] = qweights[static_cast<std::int64_t>(i)] >= 0 ? 1 : -1;
      bank.binary_scale =
          n > 0 ? std::fabs(static_cast<double>(qweights[0])) : 1.0;
      break;
    }
    case quant::PrecisionKind::kFloat:
      QNN_CHECK_MSG(false, "float has no integer realization");
  }
  if (qbias != nullptr && !qbias->empty()) {
    const auto& fb = dynamic_cast<const quant::FixedQuantizer&>(*bq);
    QNN_CHECK(fb.format().has_value());
    bank.has_bias = true;
    bank.bias_frac = fb.format()->frac_bits();
    bank.bias.resize(static_cast<std::size_t>(qbias->count()));
    for (std::int64_t i = 0; i < qbias->count(); ++i)
      bank.bias[static_cast<std::size_t>(i)] =
          fb.format()->to_raw(static_cast<double>((*qbias)[i]));
  }
  return bank;
}

struct ConvStage final : NfuSimulator::Stage {
  Bank bank;
  std::int64_t in_c, kernel, stride, pad, out_c;
  FixedPointFormat out_format{16, 8};
  double requant_scale = 1.0;

  RawTensor run(const RawTensor& in) const override {
    const Shape& s = in.shape;
    QNN_CHECK(s.rank() == 4 && s.c() == in_c);
    const std::int64_t oh = (s.h() + 2 * pad - kernel) / stride + 1;
    const std::int64_t ow = (s.w() + 2 * pad - kernel) / stride + 1;
    RawTensor out;
    out.shape = Shape{s.n(), out_c, oh, ow};
    out.format = out_format;
    out.raw.assign(static_cast<std::size_t>(out.shape.count()), 0);

    const int acc_frac = bank.acc_frac(in.format.frac_bits());
    const std::int64_t ksq = kernel * kernel;
    for (std::int64_t n = 0; n < s.n(); ++n) {
      for (std::int64_t oc = 0; oc < out_c; ++oc) {
        const std::size_t wbase =
            static_cast<std::size_t>(oc * in_c * ksq);
        for (std::int64_t y = 0; y < oh; ++y) {
          for (std::int64_t x = 0; x < ow; ++x) {
            std::int64_t acc =
                bank.bias_term(static_cast<std::size_t>(oc), acc_frac);
            for (std::int64_t c = 0; c < in_c; ++c) {
              for (std::int64_t ky = 0; ky < kernel; ++ky) {
                const std::int64_t iy = y * stride - pad + ky;
                if (iy < 0 || iy >= s.h()) continue;
                for (std::int64_t kx = 0; kx < kernel; ++kx) {
                  const std::int64_t ix = x * stride - pad + kx;
                  if (ix < 0 || ix >= s.w()) continue;
                  const std::int64_t draw =
                      in.raw[static_cast<std::size_t>(
                          ((n * in_c + c) * s.h() + iy) * s.w() + ix)];
                  acc += bank.product(
                      wbase + static_cast<std::size_t>(
                                  (c * kernel + ky) * kernel + kx),
                      draw);
                }
              }
            }
            out.raw[static_cast<std::size_t>(
                ((n * out_c + oc) * oh + y) * ow + x)] =
                requantize(acc, acc_frac, requant_scale, out_format);
          }
        }
      }
    }
    return out;
  }
};

struct IpStage final : NfuSimulator::Stage {
  Bank bank;
  std::int64_t in_features, out_features;
  FixedPointFormat out_format{16, 8};
  double requant_scale = 1.0;

  RawTensor run(const RawTensor& in) const override {
    const std::int64_t n = in.shape[0];
    QNN_CHECK(in.shape.count_from(1) == in_features);
    RawTensor out;
    out.shape = Shape{n, out_features};
    out.format = out_format;
    out.raw.assign(static_cast<std::size_t>(n * out_features), 0);
    const int acc_frac = bank.acc_frac(in.format.frac_bits());
    for (std::int64_t s = 0; s < n; ++s) {
      const std::size_t ibase = static_cast<std::size_t>(s * in_features);
      for (std::int64_t o = 0; o < out_features; ++o) {
        std::int64_t acc =
            bank.bias_term(static_cast<std::size_t>(o), acc_frac);
        const std::size_t wbase =
            static_cast<std::size_t>(o * in_features);
        for (std::int64_t i = 0; i < in_features; ++i)
          acc += bank.product(wbase + static_cast<std::size_t>(i),
                              in.raw[ibase + static_cast<std::size_t>(i)]);
        out.raw[static_cast<std::size_t>(s * out_features + o)] =
            requantize(acc, acc_frac, requant_scale, out_format);
      }
    }
    return out;
  }
};

struct PoolStage final : NfuSimulator::Stage {
  nn::PoolMode mode;
  std::int64_t kernel, stride, pad;
  FixedPointFormat out_format{16, 8};

  RawTensor run(const RawTensor& in) const override {
    const Shape& s = in.shape;
    auto extent = [&](std::int64_t dim) {
      std::int64_t o = (dim + 2 * pad - kernel + stride - 1) / stride + 1;
      if (pad > 0 && (o - 1) * stride >= dim + pad) --o;
      return o;
    };
    const std::int64_t oh = extent(s.h()), ow = extent(s.w());
    RawTensor out;
    out.shape = Shape{s.n(), s.c(), oh, ow};
    out.format = out_format;
    out.raw.assign(static_cast<std::size_t>(out.shape.count()), 0);
    std::size_t oidx = 0;
    for (std::int64_t n = 0; n < s.n(); ++n) {
      for (std::int64_t c = 0; c < s.c(); ++c) {
        const std::size_t plane =
            static_cast<std::size_t>((n * s.c() + c) * s.h() * s.w());
        for (std::int64_t y = 0; y < oh; ++y) {
          const std::int64_t y0 = std::max<std::int64_t>(0, y * stride - pad);
          const std::int64_t y1 =
              std::min<std::int64_t>(s.h(), y * stride - pad + kernel);
          for (std::int64_t x = 0; x < ow; ++x, ++oidx) {
            const std::int64_t x0 =
                std::max<std::int64_t>(0, x * stride - pad);
            const std::int64_t x1 =
                std::min<std::int64_t>(s.w(), x * stride - pad + kernel);
            if (mode == nn::PoolMode::kMax) {
              std::int64_t best = std::numeric_limits<std::int64_t>::min();
              for (std::int64_t yy = y0; yy < y1; ++yy)
                for (std::int64_t xx = x0; xx < x1; ++xx)
                  best = std::max(
                      best, in.raw[plane + static_cast<std::size_t>(
                                               yy * s.w() + xx)]);
              // Max preserves the grid; only the format label changes.
              out.raw[oidx] = saturate(
                  shift_raw_rounded(best, in.format.frac_bits(),
                                    out_format.frac_bits()),
                  out_format);
            } else {
              std::int64_t acc = 0;
              for (std::int64_t yy = y0; yy < y1; ++yy)
                for (std::int64_t xx = x0; xx < x1; ++xx)
                  acc += in.raw[plane + static_cast<std::size_t>(
                                            yy * s.w() + xx)];
              const double count =
                  static_cast<double>((y1 - y0) * (x1 - x0));
              const double value = static_cast<double>(acc) *
                                   std::ldexp(1.0, -in.format.frac_bits()) /
                                   count;
              out.raw[oidx] = out_format.to_raw(value);
            }
          }
        }
      }
    }
    return out;
  }
};

struct ReluStage final : NfuSimulator::Stage {
  FixedPointFormat out_format{16, 8};

  RawTensor run(const RawTensor& in) const override {
    RawTensor out;
    out.shape = in.shape;
    out.format = out_format;
    out.raw.resize(in.raw.size());
    for (std::size_t i = 0; i < in.raw.size(); ++i) {
      const std::int64_t v = std::max<std::int64_t>(in.raw[i], 0);
      out.raw[i] = saturate(shift_raw_rounded(v, in.format.frac_bits(),
                                              out_format.frac_bits()),
                            out_format);
    }
    return out;
  }
};

// DianNao's stage-3 sigmoid/tanh block: the PLAN piecewise-linear
// approximation (shift-and-add slopes), evaluated here on decoded
// values and re-gridded — functionally identical to the fixed-point
// shift network for the formats in play.
struct PlanStage final : NfuSimulator::Stage {
  bool is_tanh = false;
  FixedPointFormat out_format{16, 8};

  RawTensor run(const RawTensor& in) const override {
    RawTensor out;
    out.shape = in.shape;
    out.format = out_format;
    out.raw.resize(in.raw.size());
    for (std::size_t i = 0; i < in.raw.size(); ++i) {
      const double x = in.format.from_raw(in.raw[i]);
      const double y = is_tanh ? plan_tanh(x) : plan_sigmoid(x);
      out.raw[i] = out_format.to_raw(y);
    }
    return out;
  }
};

// Inference-time dropout: identity (inverted dropout trains with the
// scale folded in), just re-gridded to the site format.
struct PassthroughStage final : NfuSimulator::Stage {
  FixedPointFormat out_format{16, 8};

  RawTensor run(const RawTensor& in) const override {
    RawTensor out;
    out.shape = in.shape;
    out.format = out_format;
    out.raw.resize(in.raw.size());
    for (std::size_t i = 0; i < in.raw.size(); ++i)
      out.raw[i] = saturate(
          shift_raw_rounded(in.raw[i], in.format.frac_bits(),
                            out_format.frac_bits()),
          out_format);
    return out;
  }
};

const FixedPointFormat& site_format(const quant::QuantizedNetwork& qnet,
                                    std::size_t site) {
  const auto* fq = dynamic_cast<const quant::FixedQuantizer*>(
      &qnet.data_quantizer(site));
  QNN_CHECK_MSG(fq != nullptr && fq->format().has_value(),
                "NfuSimulator requires fixed-point data formats "
                "(calibrated non-float config)");
  return *fq->format();
}

}  // namespace

NfuSimulator::NfuSimulator(nn::Network& net,
                           const quant::QuantizedNetwork& qnet,
                           const Shape& input_shape,
                           const ApproxMultSpec& multiplier) {
  QNN_CHECK_MSG(!qnet.config().is_float(),
                "the float config has no integer realization");
  QNN_CHECK_MSG(multiplier.kind == ApproxMultKind::kExact ||
                    qnet.config().kind == quant::PrecisionKind::kFixed,
                "approximate multipliers apply to fixed-point configs");
  QNN_CHECK_MSG(qnet.calibrated(), "calibrate the QuantizedNetwork first");
  input_format_ = site_format(qnet, 0);

  // Materialize the quantized weights: a forward pass leaves quantized
  // values live in the network parameters.
  auto& mutable_qnet = const_cast<quant::QuantizedNetwork&>(qnet);
  {
    std::vector<std::int64_t> dims = input_shape.dims();
    QNN_CHECK(!dims.empty());
    dims[0] = 1;
    (void)mutable_qnet.forward(Tensor(Shape{dims}));
  }

  const quant::PrecisionKind kind = qnet.config().kind;
  std::size_t param_index = 0;
  for (std::size_t li = 0; li < net.num_layers(); ++li) {
    nn::Layer& layer = net.layer(li);
    const FixedPointFormat& of = site_format(qnet, li + 1);
    if (auto* conv = dynamic_cast<nn::Conv2d*>(&layer)) {
      auto stage = std::make_unique<ConvStage>();
      const auto params = conv->params();
      const Tensor* bias =
          params.size() > 1 ? &params[1]->value : nullptr;
      stage->bank = make_bank(
          kind, params[0]->value, qnet.weight_quantizer(param_index), bias,
          params.size() > 1 ? &qnet.weight_quantizer(param_index + 1)
                            : nullptr,
          multiplier);
      stage->requant_scale =
          kind == quant::PrecisionKind::kBinary ? stage->bank.binary_scale
                                                : 1.0;
      param_index += params.size();
      stage->in_c = conv->in_channels();
      stage->kernel = conv->spec().kernel;
      stage->stride = conv->spec().stride;
      stage->pad = conv->spec().pad;
      stage->out_c = conv->spec().out_channels;
      stage->out_format = of;
      stages_.push_back(std::move(stage));
    } else if (auto* ip = dynamic_cast<nn::InnerProduct*>(&layer)) {
      auto stage = std::make_unique<IpStage>();
      const auto params = ip->params();
      const Tensor* bias =
          params.size() > 1 ? &params[1]->value : nullptr;
      stage->bank = make_bank(
          kind, params[0]->value, qnet.weight_quantizer(param_index), bias,
          params.size() > 1 ? &qnet.weight_quantizer(param_index + 1)
                            : nullptr,
          multiplier);
      stage->requant_scale =
          kind == quant::PrecisionKind::kBinary ? stage->bank.binary_scale
                                                : 1.0;
      param_index += params.size();
      stage->in_features = ip->in_features();
      stage->out_features = ip->out_features();
      stage->out_format = of;
      stages_.push_back(std::move(stage));
    } else if (auto* pool = dynamic_cast<nn::Pool2d*>(&layer)) {
      auto stage = std::make_unique<PoolStage>();
      stage->mode = pool->spec().mode;
      stage->kernel = pool->spec().kernel;
      stage->stride = pool->spec().stride;
      stage->pad = pool->spec().pad;
      stage->out_format = of;
      stages_.push_back(std::move(stage));
    } else if (dynamic_cast<nn::Relu*>(&layer) != nullptr) {
      auto stage = std::make_unique<ReluStage>();
      stage->out_format = of;
      stages_.push_back(std::move(stage));
    } else if (dynamic_cast<nn::Sigmoid*>(&layer) != nullptr ||
               dynamic_cast<nn::Tanh*>(&layer) != nullptr) {
      auto stage = std::make_unique<PlanStage>();
      stage->is_tanh = dynamic_cast<nn::Tanh*>(&layer) != nullptr;
      stage->out_format = of;
      stages_.push_back(std::move(stage));
    } else if (dynamic_cast<nn::Dropout*>(&layer) != nullptr) {
      auto stage = std::make_unique<PassthroughStage>();
      stage->out_format = of;
      stages_.push_back(std::move(stage));
    } else {
      QNN_CHECK_MSG(false, "unsupported layer kind in NfuSimulator: "
                               << layer.kind());
    }
  }
  mutable_qnet.restore_masters();
}

NfuSimulator::~NfuSimulator() = default;

Tensor NfuSimulator::forward(const Tensor& input) const {
  RawTensor x = encode_tensor(input, input_format_);
  for (const auto& stage : stages_) {
    // Inner products consume flattened inputs.
    if (dynamic_cast<const IpStage*>(stage.get()) != nullptr &&
        x.shape.rank() != 2) {
      x.shape = Shape{x.shape[0], x.shape.count_from(1)};
    }
    x = stage->run(x);
  }
  return x.decode();
}

}  // namespace qnn::hw
