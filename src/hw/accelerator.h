// DianNao-style tile accelerator model (paper §IV-A "Hardware
// Accelerator", Fig. 2): Tn neuron processing units × Ts synapses each,
// three buffer subsystems (input Bin, output Bout, weights Sb), and a
// three-stage NFU pipeline — weight blocks (WB), adder trees,
// nonlinearity. The WB stage is swapped per precision:
//   (a) float/fixed  -> multiplier block
//   (b) powers of two -> barrel shifter + negate
//   (c) binary        -> sign-mux only, and NFU stages 1+2 merge into a
//       two-stage pipeline (paper §IV-A4).
#pragma once

#include <string>

#include "hw/tech65.h"
#include "quant/qconfig.h"

namespace qnn::hw {

struct AcceleratorConfig {
  int neurons = 16;             // Tn
  int synapses_per_neuron = 16; // Ts
  // Buffer geometry (entries × words-per-entry); widths follow precision.
  int bin_entries = 64;
  int bout_entries = 64;
  int sb_entries = 64;
  quant::PrecisionConfig precision;
  Tech65 tech = default_tech();

  int macs_per_cycle() const { return neurons * synapses_per_neuron; }
  // NFU pipeline depth: 3 stages, or 2 for binary (stages 1+2 merged).
  int pipeline_depth() const {
    return precision.kind == quant::PrecisionKind::kBinary ? 2 : 3;
  }
};

// Component-class decomposition used by Fig. 3.
struct Breakdown {
  double memory = 0;        // buffer arrays
  double registers = 0;     // pipeline + buffer IO registers
  double combinational = 0; // WB + adder trees + nonlinearity + control
  double buf_inv = 0;       // clock/buffer/inverter tree

  double total() const {
    return memory + registers + combinational + buf_inv;
  }
};

struct DesignMetrics {
  Breakdown area_um2;   // per class, µm²
  Breakdown power_mw;   // per class, mW

  double area_mm2() const { return area_um2.total() / 1e6; }
  double total_power_mw() const { return power_mw.total(); }
};

// Bits held in each buffer subsystem under the config's precision.
struct BufferBits {
  std::int64_t bin = 0;
  std::int64_t bout = 0;
  std::int64_t sb = 0;
  std::int64_t total() const { return bin + bout + sb; }
};

class Accelerator {
 public:
  explicit Accelerator(const AcceleratorConfig& config);

  const AcceleratorConfig& config() const { return config_; }
  const DesignMetrics& metrics() const { return metrics_; }
  BufferBits buffer_bits() const;

  double area_mm2() const { return metrics_.area_mm2(); }
  double power_mw() const { return metrics_.total_power_mw(); }

  // Width of a WB-stage product feeding the adder tree.
  int product_bits() const;
  // Accumulator width at the adder-tree root.
  int accumulator_bits() const;

  std::string describe() const;

 private:
  DesignMetrics compute_metrics() const;

  AcceleratorConfig config_;
  DesignMetrics metrics_;
};

// Savings of `x` relative to `baseline`, in percent (paper's
// "Power Saving %" / "Area Saving %" columns).
double saving_percent(double baseline, double x);

}  // namespace qnn::hw
