#include "hw/schedule.h"

#include <algorithm>

#include "util/check.h"

namespace qnn::hw {
namespace {

std::int64_t ceil_div(std::int64_t a, std::int64_t b) {
  return (a + b - 1) / b;
}

}  // namespace

double ScheduleResult::runtime_us(const Accelerator& acc) const {
  return static_cast<double>(total_cycles) /
         acc.config().tech.clock_hz * 1e6;
}

double ScheduleResult::energy_uj(const Accelerator& acc) const {
  // mW × µs = nJ; scale to µJ.
  return acc.power_mw() * runtime_us(acc) * 1e-3;
}

ScheduleResult schedule_network(const std::vector<nn::LayerDesc>& descs,
                                const Accelerator& acc,
                                const ScheduleOptions& options) {
  const auto& c = acc.config();
  const std::int64_t tn = c.neurons, ts = c.synapses_per_neuron;
  const std::int64_t fill = c.pipeline_depth() - 1;

  ScheduleResult result;
  for (const nn::LayerDesc& d : descs) {
    LayerSchedule ls;
    ls.layer_name = d.name;
    ls.kind = d.kind;
    ls.macs = d.macs;

    if (d.kind == "conv") {
      // The pipeline streams positions back-to-back; fill/drain is paid
      // once per output-channel tile pass, not per position.
      const std::int64_t positions = d.out.h() * d.out.w();
      const std::int64_t cout_tiles = ceil_div(d.out.c(), tn);
      const std::int64_t fan_tiles = ceil_div(d.fan_in, ts);
      ls.cycles = positions * cout_tiles * fan_tiles + cout_tiles * fill;
    } else if (d.kind == "inner_product") {
      const std::int64_t out_tiles = ceil_div(d.out.count_from(1), tn);
      const std::int64_t fan_tiles = ceil_div(d.fan_in, ts);
      ls.cycles = out_tiles * fan_tiles + out_tiles * fill;
      if (options.dma_bits_per_cycle > 0) {
        // Fully-connected weights are used exactly once per image; when
        // they exceed the on-chip Sb they must stream from DRAM.
        const std::int64_t weight_bits =
            d.weights * c.precision.weight_bits;
        if (weight_bits > acc.buffer_bits().sb) {
          const std::int64_t stream_cycles =
              ceil_div(weight_bits, options.dma_bits_per_cycle);
          ls.cycles = std::max(ls.cycles, stream_cycles);
        }
      }
    } else if (d.kind == "pool_max" || d.kind == "pool_avg") {
      // Tn pooling windows per cycle on the adder tree, each window
      // consuming ceil(k² / Ts) accumulation cycles.
      const std::int64_t windows = d.out.count_from(1);
      ls.cycles = ceil_div(windows, tn) * ceil_div(d.fan_in, ts);
    } else {
      // relu & friends ride the stage-3 nonlinearity: no extra cycles.
      ls.cycles = 0;
    }

    if (ls.cycles > 0 && ls.macs > 0) {
      ls.utilization = static_cast<double>(ls.macs) /
                       (static_cast<double>(ls.cycles) *
                        static_cast<double>(tn * ts));
    }
    result.total_cycles += ls.cycles;
    result.layers.push_back(std::move(ls));
  }
  return result;
}

}  // namespace qnn::hw
