// Maps a network onto the tile accelerator: per-layer cycle counts under
// the Tn×Ts dataflow, runtime, and per-image inference energy.
//
// Tiling model (DianNao dataflow): every cycle the NFU consumes one
// Tn×Ts weight tile — Tn output neurons each accumulate Ts inputs. A
// layer with fan_in F and Cout outputs over P output positions costs
//   P × ceil(Cout / Tn) × ceil(F / Ts)  cycles,
// plus (pipeline_depth − 1) fill cycles per tile pass. Edge tiles where
// Cout or F is not a multiple of Tn/Ts waste lanes — exactly the
// utilization loss the paper's runtimes embed. Pooling runs on the adder
// tree (stage 2) at Tn windows per cycle; the nonlinearity is free
// (stage 3 of the pipeline).
//
// Weight/data traffic from main memory is NOT charged (paper Fig. 3:
// "these graphs do not reflect the power consumption of the main
// memory"); the optional `dma_bits_per_cycle` models the weight-
// streaming bandwidth wall as an extension (bench/ablate_bandwidth) and
// is infinite (0 = off) by default, matching the paper's idealization.
#pragma once

#include <vector>

#include "hw/accelerator.h"
#include "nn/layer.h"

namespace qnn::hw {

struct LayerSchedule {
  std::string layer_name;
  std::string kind;
  std::int64_t cycles = 0;
  std::int64_t macs = 0;
  double utilization = 0.0;  // macs / (cycles × Tn × Ts)
};

struct ScheduleResult {
  std::vector<LayerSchedule> layers;
  std::int64_t total_cycles = 0;

  double runtime_us(const Accelerator& acc) const;
  // Per-image inference energy: accelerator power × runtime.
  double energy_uj(const Accelerator& acc) const;
};

struct ScheduleOptions {
  // 0 = infinite DMA bandwidth (the paper's assumption). When positive,
  // layers whose weights exceed the Sb capacity stall on weight
  // streaming at this many bits per cycle.
  std::int64_t dma_bits_per_cycle = 0;
};

// `descs` comes from nn::Network::describe(input_shape).
ScheduleResult schedule_network(const std::vector<nn::LayerDesc>& descs,
                                const Accelerator& acc,
                                const ScheduleOptions& options = {});

}  // namespace qnn::hw
