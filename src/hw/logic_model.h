// Area models for the accelerator's logic building blocks.
// All results in µm²; see tech65.h for the calibration story.
#pragma once

#include "hw/tech65.h"

namespace qnn::hw {

// w_a × w_b array multiplier.
double int_multiplier_area(const Tech65& t, int w_a, int w_b);

// Integer adder producing `result_bits`.
double adder_area(const Tech65& t, int result_bits);

// Barrel shifter moving `data_bits` by up to 2^shift_stages positions
// (shift_stages mux levels, each data_bits wide), plus conditional
// negate (paper Fig. 2(b): shifter + ×(−1)).
double barrel_shifter_area(const Tech65& t, int data_bits,
                           int shift_stages);

// Conditional two's-complement negate (sign-mux), the binary net's
// weight block (paper Fig. 2(c)).
double sign_negate_area(const Tech65& t, int data_bits);

// A bank of `bits` pipeline-register bits.
double register_area(const Tech65& t, int bits);

// Adder tree summing `leaves` operands of `operand_bits` bits:
// leaves-1 adders with widths growing one bit per level.
double adder_tree_area(const Tech65& t, int leaves, int operand_bits);

// Approximate multiplier area (see fixed/approx_mult.h):
//  * Mitchell — two leading-one detectors (~mux chains), two mantissa
//    shifters, one adder, one decode shifter: linear in width, no
//    partial-product array.
//  * Truncated(k) — the exact array minus the k-column triangle.
double mitchell_multiplier_area(const Tech65& t, int w_a, int w_b);
double truncated_multiplier_area(const Tech65& t, int w_a, int w_b,
                                 int truncated_columns);

}  // namespace qnn::hw
