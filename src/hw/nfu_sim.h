// Functional NFU simulator: hardware-faithful *integer-domain* inference.
//
// The training framework simulates quantization on float tensors ("fake
// quantization"). The accelerator, however, executes integer arithmetic:
// raw two's-complement words from the buffers, a weight-block stage that
// is a multiplier / barrel shifter / sign-mux depending on precision, a
// wide adder-tree accumulator, and a requantizing nonlinearity stage.
// This module executes a calibrated QuantizedNetwork exactly that way:
//
//   * weights/biases/activations live as int64 raw words in their
//     calibrated FixedPointFormats;
//   * convolution / inner-product MACs accumulate exactly in a wide
//     accumulator (never overflows for the paper's layer sizes);
//   * power-of-two weights multiply by shifting; binary weights by
//     conditional negation, with the per-tensor scale folded into the
//     requantization step (a fixed multiplier there, as DESIGN.md §5
//     documents);
//   * pooling and ReLU operate on raw words (order-preserving);
//   * every layer boundary requantizes into the site's data format.
//
// Because the float path accumulates in float32 while this path is
// exact, outputs can differ by the float path's accumulation rounding —
// at most about one output grid step for the paper's fan-ins. The
// equivalence tests assert exactly that bound, which is the evidence
// that fake-quantized training is faithful to the hardware.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "fixed/approx_mult.h"
#include "fixed/fixed_format.h"
#include "quant/qnetwork.h"
#include "tensor/tensor.h"

namespace qnn::hw {

// A tensor of raw fixed-point words tagged with its format.
struct RawTensor {
  Shape shape;
  std::vector<std::int64_t> raw;
  FixedPointFormat format{16, 8};

  std::int64_t count() const { return shape.count(); }
  // Decodes to float for inspection / final readout.
  Tensor decode() const;
};

// Encodes a float tensor onto `format`'s grid as raw words.
RawTensor encode_tensor(const Tensor& t, const FixedPointFormat& format);

class NfuSimulator {
 public:
  // Captures the quantized weights and all calibrated formats from a
  // calibrated QuantizedNetwork over `net`. Only fixed-point data paths
  // are supported (every non-float paper config qualifies: their data
  // side is fixed-point). The float config has no integer realization.
  // `input_shape` is the network's sample input shape (N ignored).
  // `multiplier` swaps the weight-block multiplier for an approximate
  // design (fixed-point configs only; pow2/binary have no multiplier).
  NfuSimulator(nn::Network& net, const quant::QuantizedNetwork& qnet,
               const Shape& input_shape,
               const ApproxMultSpec& multiplier = {});
  ~NfuSimulator();  // out-of-line: Stage is incomplete here

  // Integer-domain forward pass; returns decoded float logits.
  Tensor forward(const Tensor& input) const;

  // Number of executed (non-trivial) stages, for introspection.
  std::size_t num_stages() const { return stages_.size(); }

  struct Stage;  // opaque; defined in the .cc

 private:
  std::vector<std::unique_ptr<Stage>> stages_;
  FixedPointFormat input_format_{16, 8};
};

}  // namespace qnn::hw
