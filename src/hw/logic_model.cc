#include "hw/logic_model.h"

#include <algorithm>

#include "util/check.h"

namespace qnn::hw {

double int_multiplier_area(const Tech65& t, int w_a, int w_b) {
  QNN_CHECK(w_a > 0 && w_b > 0);
  return t.mult_area_per_bit2 * static_cast<double>(w_a) *
         static_cast<double>(w_b);
}

double adder_area(const Tech65& t, int result_bits) {
  QNN_CHECK(result_bits > 0);
  return t.adder_area_per_bit * static_cast<double>(result_bits);
}

double barrel_shifter_area(const Tech65& t, int data_bits,
                           int shift_stages) {
  QNN_CHECK(data_bits > 0 && shift_stages > 0);
  // One data_bits-wide 2:1 mux level per shift stage, plus the negate.
  return t.mux_area_per_bit * static_cast<double>(data_bits) *
             static_cast<double>(shift_stages) +
         sign_negate_area(t, data_bits);
}

double sign_negate_area(const Tech65& t, int data_bits) {
  QNN_CHECK(data_bits > 0);
  // Inverter + mux per bit, plus the +1 increment chain (≈ half adder
  // per bit) — fold into 1.5 mux-equivalents per bit.
  return 1.5 * t.mux_area_per_bit * static_cast<double>(data_bits);
}

double register_area(const Tech65& t, int bits) {
  QNN_CHECK(bits >= 0);
  return t.reg_area_per_bit * static_cast<double>(bits);
}

double mitchell_multiplier_area(const Tech65& t, int w_a, int w_b) {
  QNN_CHECK(w_a > 0 && w_b > 0);
  // Per operand: leading-one detector + normalizing barrel shifter
  // (log2(w) mux levels); then one (w_a + w_b)-bit adder and one
  // denormalizing shifter on the sum width.
  auto stages = [](int w) {
    int s = 0;
    while ((1 << s) < w) ++s;
    return std::max(s, 1);
  };
  const double lod_a = t.mux_area_per_bit * w_a * 2;
  const double lod_b = t.mux_area_per_bit * w_b * 2;
  const double shift_a = t.mux_area_per_bit * w_a * stages(w_a);
  const double shift_b = t.mux_area_per_bit * w_b * stages(w_b);
  const int sum_w = w_a + w_b;
  const double add = adder_area(t, sum_w);
  const double denorm = t.mux_area_per_bit * sum_w * stages(sum_w);
  return lod_a + lod_b + shift_a + shift_b + add + denorm;
}

double truncated_multiplier_area(const Tech65& t, int w_a, int w_b,
                                 int truncated_columns) {
  QNN_CHECK(truncated_columns >= 0);
  const double full = int_multiplier_area(t, w_a, w_b);
  // Dropping the k low columns removes a triangle of ~k²/2 cells
  // (bounded by the full array).
  const double removed =
      std::min(full, t.mult_area_per_bit2 * 0.5 *
                         static_cast<double>(truncated_columns) *
                         truncated_columns);
  return full - removed;
}

double adder_tree_area(const Tech65& t, int leaves, int operand_bits) {
  QNN_CHECK(leaves >= 2 && operand_bits > 0);
  double total = 0.0;
  int width = operand_bits;
  for (int level_nodes = leaves / 2; level_nodes >= 1; level_nodes /= 2) {
    ++width;  // each level's sum grows one bit
    total += static_cast<double>(level_nodes) * adder_area(t, width);
    if (level_nodes == 1) break;
  }
  return total;
}

}  // namespace qnn::hw
