// Config-driven experiment runner — the library as a tool:
//
//   ./build/examples/run_experiment examples/configs/lenet_fixed8.cfg
//
// The config describes the network (zoo preset or custom layer stack),
// dataset, training schedule, and one or more precision blocks; the
// runner trains the float baseline, QAT-fine-tunes every precision,
// and prints accuracy + hardware metrics per design point.
#include <iostream>

#include "config/builders.h"
#include "exp/sweep.h"
#include "hw/schedule.h"
#include "quant/memory.h"
#include "quant/qat.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace qnn;
  if (argc < 2) {
    std::cerr << "usage: run_experiment <config-file>\n";
    return 2;
  }
  const config::ConfigNode root = config::load_config(argv[1]);

  const auto split = config::build_dataset(root.block("dataset"));
  auto built = config::build_network(root.block("network"));
  nn::Network& net = *built.network;
  const nn::TrainConfig train_cfg =
      config::build_train_config(root.block("train"));

  std::cout << "training " << net.name() << " ("
            << net.num_params() << " params) on "
            << split.train.name << " [" << split.train.size()
            << " images]...\n";
  nn::train(net, split.train, train_cfg);
  const double float_acc = nn::evaluate(net, split.test);
  std::cout << "float test accuracy: " << format_percent(float_acc)
            << "%\n\n";

  const auto& precisions = root.blocks("precision");
  if (precisions.empty()) return 0;

  nn::TrainConfig qat_cfg = train_cfg;
  if (root.has_block("finetune"))
    qat_cfg = config::build_train_config(root.block("finetune"));
  else
    qat_cfg.epochs = std::max(1, train_cfg.epochs / 2);

  Table t({"Precision (w,in)", "Accuracy %", "Energy uJ", "Area mm^2",
           "Power mW", "Params KB"});
  for (const config::ConfigNode& pnode : precisions) {
    const quant::PrecisionConfig precision =
        config::build_precision(pnode);
    double acc = float_acc;
    if (!precision.is_float()) {
      // Fresh copy from the float weights for each design point.
      auto copy = config::build_network(root.block("network"));
      copy.network->copy_params_from(net);
      quant::QuantizedNetwork qnet(*copy.network, precision);
      quant::QatConfig qc;
      qc.train = qat_cfg;
      quant::qat_finetune(qnet, split.train, qc);
      acc = nn::evaluate(qnet, split.test);
      qnet.restore_masters();
    }
    hw::AcceleratorConfig acfg;
    acfg.precision = precision;
    const hw::Accelerator acc_hw(acfg);
    const auto sched =
        hw::schedule_network(net.describe(built.input_shape), acc_hw);
    t.add_row({precision.label(), format_percent(acc),
               format_fixed(sched.energy_uj(acc_hw), 2),
               format_fixed(acc_hw.area_mm2(), 2),
               format_fixed(acc_hw.power_mw(), 1),
               format_fixed(quant::memory_footprint(net, built.input_shape,
                                                    precision)
                                .param_kb(),
                            0)});
  }
  std::cout << t.to_string();
  return 0;
}
