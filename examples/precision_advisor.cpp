// Precision advisor: ties the extensions together. Given a dataset +
// network + accuracy budget, it
//   1. trains the float baseline,
//   2. uses the analytical noise model to rank uniform precisions and
//      pick the narrowest whose predicted flip rate fits the budget,
//   3. runs the per-layer mixed-precision search for an even smaller
//      weight footprint,
//   4. verifies both with QAT, and prices everything on the hardware
//      model.
//
//   ./build/examples/precision_advisor [budget_points] [train_images]
#include <cstdlib>
#include <iostream>
#include <sstream>

#include "exp/sweep.h"
#include "quant/memory.h"
#include "quant/mixed_precision.h"
#include "quant/noise_model.h"
#include "quant/qat.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace qnn;
  const double budget = argc > 1 ? std::atof(argv[1]) : 1.5;
  const std::int64_t train_n = argc > 2 ? std::atol(argv[2]) : 1500;

  data::SyntheticConfig dc;
  dc.num_train = train_n;
  dc.num_test = 500;
  const auto split = data::make_mnist_like(dc);
  nn::ZooConfig zc;
  zc.channel_scale = 0.5;
  auto net = nn::make_lenet(zc);
  nn::TrainConfig tc;
  tc.epochs = 5;
  tc.batch_size = 32;
  tc.sgd.learning_rate = 0.02;
  nn::train(*net, split.train, tc);
  const double float_acc = nn::evaluate(*net, split.test);
  std::cout << "float baseline: " << format_percent(float_acc)
            << "%, accuracy budget: " << budget << " points\n\n";

  // Step 1: analytical ranking of the uniform fixed-point ladder.
  std::cout << "analytical screening (no quantized training needed):\n";
  Table screen({"Uniform width", "predicted flip %", "within budget?"});
  int chosen_bits = 16;
  for (int bits : {16, 8, 4, 2}) {
    quant::QuantizedNetwork probe(*net, quant::fixed_config(bits, bits));
    probe.calibrate(data::batch_images(split.train, 0, 64));
    const auto report =
        quant::analyze_noise(*net, probe, split.test, 128);
    const bool ok = report.predicted_flip_rate <= budget;
    if (ok) chosen_bits = bits;
    screen.add_row({std::to_string(bits) + "-bit",
                    format_percent(report.predicted_flip_rate),
                    ok ? "yes" : "no"});
  }
  std::cout << screen.to_string() << '\n';

  // Step 2: mixed per-layer refinement below the chosen uniform width.
  quant::MixedSearchConfig mcfg;
  mcfg.start_bits = chosen_bits;
  mcfg.candidate_bits = {chosen_bits, chosen_bits / 2,
                         std::max(2, chosen_bits / 4)};
  mcfg.accuracy_budget = budget;
  const auto mixed =
      quant::search_mixed_precision(*net, split.train, split.test, mcfg);

  // Step 3: QAT verification of both recommendations.
  auto verify = [&](quant::QuantizedNetwork& qnet) {
    quant::QatConfig qc;
    qc.train.epochs = 2;
    qc.train.batch_size = 32;
    qc.train.sgd.learning_rate = 0.01;
    quant::qat_finetune(qnet, split.train, qc);
    const double acc = nn::evaluate(qnet, split.test);
    qnet.restore_masters();
    return acc;
  };
  nn::ZooConfig zc2 = zc;
  auto uniform_net = nn::make_lenet(zc2);
  uniform_net->copy_params_from(*net);
  quant::QuantizedNetwork uniform(
      *uniform_net, quant::fixed_config(chosen_bits, chosen_bits));
  const double uniform_acc = verify(uniform);

  auto mixed_net = nn::make_lenet(zc2);
  mixed_net->copy_params_from(*net);
  quant::QuantizedNetwork mixedq(
      *mixed_net, quant::fixed_config(chosen_bits, chosen_bits),
      mixed.weight_bits);
  const double mixed_acc = verify(mixedq);

  std::ostringstream bits_str;
  for (std::size_t i = 0; i < mixed.weight_bits.size(); ++i)
    bits_str << (i ? "/" : "") << mixed.weight_bits[i];

  const Shape in = nn::input_shape_for("lenet");
  auto full = nn::make_lenet();
  const auto cfg = quant::fixed_config(chosen_bits, chosen_bits);
  Table rec({"Recommendation", "QAT acc%", "mean w-bits", "Energy uJ*",
             "Params KB*"});
  rec.add_row(
      {"uniform " + std::to_string(chosen_bits) + "-bit",
       format_percent(uniform_acc),
       format_fixed(chosen_bits, 2),
       format_fixed(exp::inference_energy_uj(*full, in, cfg), 2),
       format_fixed(quant::memory_footprint(*full, in, cfg).param_kb(), 0)});
  rec.add_row({"mixed " + bits_str.str(), format_percent(mixed_acc),
               format_fixed(mixed.mean_weight_bits, 2), "(as uniform)",
               format_fixed(
                   quant::memory_footprint(*full, in, cfg).param_kb() *
                       mixed.mean_weight_bits / chosen_bits,
                   0)});
  std::cout << rec.to_string()
            << "* full-size LeNet on the 16x16 accelerator\n";
  return 0;
}
