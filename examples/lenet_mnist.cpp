// Full precision sweep on the MNIST-like benchmark with LeNet — the
// Table IV (MNIST) experiment as a configurable command-line tool.
//
//   ./build/examples/lenet_mnist [train_images] [epochs] [channel_scale]
// e.g.
//   ./build/examples/lenet_mnist 2500 6 0.5
#include <cstdlib>
#include <iostream>

#include "exp/sweep.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace qnn;

  exp::ExperimentSpec spec;
  spec.network = "lenet";
  spec.dataset = "mnist";
  spec.data.num_train = argc > 1 ? std::atol(argv[1]) : 2000;
  spec.data.num_test = 600;
  spec.channel_scale = argc > 3 ? std::atof(argv[3]) : 0.5;
  spec.float_train.epochs = argc > 2 ? std::atoi(argv[2]) : 5;
  spec.float_train.batch_size = 32;
  spec.float_train.sgd.learning_rate = 0.02;
  spec.float_train.verbose = true;
  spec.qat_train = spec.float_train;
  spec.qat_train.epochs = std::max(2, spec.float_train.epochs / 2);
  spec.qat_train.sgd.learning_rate = 0.01;
  spec.qat_train.verbose = false;

  const exp::SweepResult result =
      exp::run_precision_sweep(spec, quant::paper_precisions());

  Table t({"Precision (w,in)", "Accuracy %", "Energy uJ", "Saving %",
           "Params KB", "Cycles"});
  for (const auto& p : result.points) {
    t.add_row({p.precision.label(),
               p.converged ? format_percent(p.accuracy)
                           : format_percent(p.accuracy) + " (NC)",
               format_fixed(p.energy_uj, 2),
               format_percent(p.energy_saving_percent),
               format_fixed(p.param_kb, 0), std::to_string(p.cycles)});
  }
  std::cout << '\n' << t.to_string();
  std::cout << "\nEnergy here is for the channel-scaled network actually "
               "trained; bench/table4_mnist_svhn reports the full-size "
               "architecture (paper-comparable µJ).\n";
  return 0;
}
