// Quickstart: train a small network in float, quantize it to 8-bit
// fixed point with quantization-aware fine-tuning, and compare accuracy,
// energy, and memory — the library's core loop in ~60 lines.
//
//   ./build/examples/quickstart
#include <iostream>

#include "data/synthetic.h"
#include "exp/sweep.h"
#include "nn/trainer.h"
#include "nn/zoo.h"
#include "quant/memory.h"
#include "quant/qat.h"

int main() {
  using namespace qnn;

  // 1. A synthetic MNIST-like dataset (28x28 grayscale digit glyphs).
  data::SyntheticConfig data_cfg;
  data_cfg.num_train = 1500;
  data_cfg.num_test = 500;
  const data::Split data = data::make_mnist_like(data_cfg);

  // 2. A channel-scaled LeNet (Table I architecture), trained in float.
  nn::ZooConfig zoo;
  zoo.channel_scale = 0.5;
  auto net = nn::make_lenet(zoo);

  nn::TrainConfig train_cfg;
  train_cfg.epochs = 4;
  train_cfg.batch_size = 32;
  train_cfg.sgd.learning_rate = 0.02;
  train_cfg.verbose = true;
  nn::train(*net, data.train, train_cfg);
  const double float_acc = nn::evaluate(*net, data.test);

  // 3. Quantize to fixed-point (8,8) with QAT (dual weight sets,
  //    straight-through estimator, master clipping).
  const quant::PrecisionConfig precision = quant::fixed_config(8, 8);
  quant::QuantizedNetwork qnet(*net, precision);
  quant::QatConfig qat_cfg;
  qat_cfg.train.epochs = 2;
  qat_cfg.train.batch_size = 32;
  qat_cfg.train.sgd.learning_rate = 0.01;
  quant::qat_finetune(qnet, data.train, qat_cfg);
  const double q_acc = nn::evaluate(qnet, data.test);
  qnet.restore_masters();

  // 4. Hardware cost of both designs on the DianNao-style accelerator
  //    (full-size LeNet, 65 nm @ 250 MHz).
  auto full = nn::make_lenet();
  const Shape input = nn::input_shape_for("lenet");
  const double float_uj =
      exp::inference_energy_uj(*full, input, quant::float_config());
  const double q_uj = exp::inference_energy_uj(*full, input, precision);
  const double float_kb =
      quant::memory_footprint(*full, input, quant::float_config()).param_kb();
  const double q_kb =
      quant::memory_footprint(*full, input, precision).param_kb();

  std::cout << "\n--- quickstart summary -------------------------------\n"
            << "float32 : acc " << float_acc << "%  energy " << float_uj
            << " uJ/image  params " << float_kb << " KB\n"
            << "fixed8,8: acc " << q_acc << "%  energy " << q_uj
            << " uJ/image  params " << q_kb << " KB\n"
            << "energy saving: "
            << hw::saving_percent(float_uj, q_uj) << "%  memory saving: "
            << hw::saving_percent(float_kb, q_kb) << "%\n";
  return 0;
}
