// Writes contact sheets of the three synthetic datasets as PGM/PPM
// images so the data substitution (DESIGN.md §3) can be inspected by
// eye: digit glyphs (MNIST-like), cluttered colored digits (SVHN-like),
// multi-modal texture scenes (CIFAR-like).
//
//   ./build/examples/dataset_preview [output_dir]
#include <iostream>
#include <string>

#include "data/image_io.h"
#include "data/synthetic.h"

int main(int argc, char** argv) {
  using namespace qnn;
  const std::string dir = argc > 1 ? argv[1] : ".";

  data::SyntheticConfig cfg;
  cfg.num_train = 40;
  cfg.num_test = 1;

  {
    const auto split = data::make_mnist_like(cfg);
    const std::string path = dir + "/mnist_like.pgm";
    data::write_contact_sheet(split.train.images, 40, 10, path);
    std::cout << "wrote " << path << '\n';
  }
  {
    const auto split = data::make_svhn_like(cfg);
    const std::string path = dir + "/svhn_like.ppm";
    data::write_contact_sheet(split.train.images, 40, 10, path);
    std::cout << "wrote " << path << '\n';
  }
  {
    const auto split = data::make_cifar_like(cfg);
    const std::string path = dir + "/cifar_like.ppm";
    data::write_contact_sheet(split.train.images, 40, 10, path);
    std::cout << "wrote " << path << '\n';
  }
  std::cout << "rows cycle through the ten classes (sample i has label "
               "i mod 10)\n";
  return 0;
}
