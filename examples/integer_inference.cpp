// Demonstrates the hardware-faithful integer inference path: trains a
// small LeNet, QAT-fine-tunes it at fixed(8,8), then classifies test
// digits twice — once with the fake-quantized float path used for
// training, once with the NFU integer simulator (raw two's-complement
// words, wide accumulators, requantizing shifts) — and shows the two
// agree.
//
//   ./build/examples/integer_inference
#include <cstdio>
#include <iostream>

#include "data/synthetic.h"
#include "hw/nfu_sim.h"
#include "nn/trainer.h"
#include "nn/zoo.h"
#include "quant/qat.h"

int main() {
  using namespace qnn;

  data::SyntheticConfig dc;
  dc.num_train = 1000;
  dc.num_test = 200;
  const auto split = data::make_mnist_like(dc);

  nn::ZooConfig zc;
  zc.channel_scale = 0.35;
  auto net = nn::make_lenet(zc);
  nn::TrainConfig tc;
  tc.epochs = 4;
  tc.batch_size = 32;
  tc.sgd.learning_rate = 0.02;
  nn::train(*net, split.train, tc);

  const auto precision = quant::fixed_config(8, 8);
  quant::QuantizedNetwork qnet(*net, precision);
  quant::QatConfig qc;
  qc.train.epochs = 2;
  qc.train.batch_size = 32;
  qc.train.sgd.learning_rate = 0.01;
  quant::qat_finetune(qnet, split.train, qc);

  // Float (fake-quantized) predictions.
  const Tensor batch = data::batch_images(split.test, 0, split.test.size());
  const Tensor float_logits = qnet.forward(batch);
  qnet.restore_masters();

  // Integer-domain predictions.
  const hw::NfuSimulator sim(*net, qnet, nn::input_shape_for("lenet"));
  const Tensor int_logits = sim.forward(batch);

  std::int64_t agree = 0, correct = 0;
  const std::int64_t classes = float_logits.shape()[1];
  for (std::int64_t s = 0; s < split.test.size(); ++s) {
    const float* fr = float_logits.data() + s * classes;
    const float* ir = int_logits.data() + s * classes;
    const auto fa = std::max_element(fr, fr + classes) - fr;
    const auto ia = std::max_element(ir, ir + classes) - ir;
    if (fa == ia) ++agree;
    if (ia == split.test.labels[static_cast<std::size_t>(s)]) ++correct;
  }
  const double n = static_cast<double>(split.test.size());
  std::printf(
      "\nfixed(8,8) LeNet on %lld test digits:\n"
      "  integer-path accuracy        : %.2f%%\n"
      "  float-path/integer agreement : %.2f%%\n"
      "The integer path is what the accelerator executes; agreement is "
      "the fake-quantization faithfulness the methodology rests on.\n",
      static_cast<long long>(split.test.size()), 100.0 * correct / n,
      100.0 * agree / n);
  return 0;
}
