// Pareto-frontier exploration on any dataset/network pair: trains the
// float baseline, QAT-fine-tunes each precision, and prints every
// design point with its Pareto status — the Fig. 4 methodology as an
// interactive tool.
//
//   ./build/examples/pareto_explorer [dataset] [network] [train_images]
// e.g.
//   ./build/examples/pareto_explorer cifar alex 1500
//   ./build/examples/pareto_explorer svhn convnet 2000
#include <algorithm>
#include <cstdlib>
#include <iostream>
#include <string>

#include "exp/sweep.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace qnn;

  const std::string dataset = argc > 1 ? argv[1] : "cifar";
  const std::string network = argc > 2 ? argv[2] : "alex";

  exp::ExperimentSpec spec;
  spec.network = network;
  spec.dataset = dataset;
  spec.channel_scale = 0.4;
  spec.data.num_train = argc > 3 ? std::atol(argv[3]) : 1500;
  spec.data.num_test = 500;
  spec.float_train.epochs = 10;
  spec.float_train.batch_size = 32;
  spec.float_train.sgd.learning_rate = 0.02;
  spec.float_train.sgd.step_epochs = 5;
  spec.float_train.verbose = true;
  spec.qat_train = spec.float_train;
  spec.qat_train.epochs = 2;
  spec.qat_train.sgd.learning_rate = 0.005;
  spec.qat_train.verbose = false;

  const exp::SweepResult result =
      exp::run_precision_sweep(spec, quant::paper_precisions());

  auto dominated = [&](const exp::PrecisionResult& a) {
    return std::any_of(
        result.points.begin(), result.points.end(),
        [&](const exp::PrecisionResult& b) {
          return b.converged && b.energy_uj < a.energy_uj &&
                 b.accuracy > a.accuracy;
        });
  };

  Table t({"Precision (w,in)", "Accuracy %", "Energy uJ", "Saving %",
           "Pareto-optimal"});
  for (const auto& p : result.points) {
    t.add_row({p.precision.label(),
               p.converged ? format_percent(p.accuracy)
                           : format_percent(p.accuracy) + " (NC)",
               format_fixed(p.energy_uj, 2),
               format_percent(p.energy_saving_percent),
               p.converged && !dominated(p) ? "yes" : ""});
  }
  std::cout << '\n'
            << dataset << " / " << network << " design space:\n"
            << t.to_string()
            << "\nTip: run with the expanded networks (alex+ / alex++) "
               "to reproduce the paper's larger-network-lower-precision "
               "frontier (Fig. 4).\n";
  return 0;
}
