// Hardware-model explorer: prints the accelerator design metrics (area,
// power, breakdown) and the per-layer cycle/energy schedule of any zoo
// network at any paper precision. No training involved — this is the
// pure Table III / Fig. 3 machinery.
//
//   ./build/examples/accelerator_report [network] [precision-id]
// e.g.
//   ./build/examples/accelerator_report alex++ fixed_8_8
//   ./build/examples/accelerator_report lenet binary_1_16
#include <iostream>
#include <string>

#include "hw/schedule.h"
#include "nn/zoo.h"
#include "quant/memory.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace qnn;

  const std::string network = argc > 1 ? argv[1] : "lenet";
  const std::string precision_id = argc > 2 ? argv[2] : "fixed_16_16";
  const quant::PrecisionConfig precision =
      quant::precision_by_name(precision_id);

  hw::AcceleratorConfig cfg;
  cfg.precision = precision;
  const hw::Accelerator acc(cfg);
  std::cout << acc.describe() << "\n\n";

  const auto& m = acc.metrics();
  Table breakdown({"Component class", "Area mm^2", "Power mW"});
  breakdown.add_row({"Memory (buffers)",
                     format_fixed(m.area_um2.memory / 1e6, 3),
                     format_fixed(m.power_mw.memory, 1)});
  breakdown.add_row({"Registers", format_fixed(m.area_um2.registers / 1e6, 3),
                     format_fixed(m.power_mw.registers, 1)});
  breakdown.add_row({"Combinational",
                     format_fixed(m.area_um2.combinational / 1e6, 3),
                     format_fixed(m.power_mw.combinational, 1)});
  breakdown.add_row({"Buf/Inv", format_fixed(m.area_um2.buf_inv / 1e6, 3),
                     format_fixed(m.power_mw.buf_inv, 1)});
  breakdown.add_separator();
  breakdown.add_row({"Total", format_fixed(acc.area_mm2(), 3),
                     format_fixed(acc.power_mw(), 1)});
  std::cout << breakdown.to_string() << '\n';

  auto net = nn::make_network(network, {});
  const Shape input = nn::input_shape_for(network);
  const auto sched = hw::schedule_network(net->describe(input), acc);

  Table layers({"Layer", "Kind", "Cycles", "MACs", "Utilization %"});
  for (const auto& l : sched.layers) {
    if (l.cycles == 0 && l.macs == 0) continue;  // free (relu) layers
    layers.add_row({l.layer_name, l.kind, std::to_string(l.cycles),
                    std::to_string(l.macs),
                    format_percent(100.0 * l.utilization, 1)});
  }
  std::cout << network << " schedule at " << precision.label() << ":\n"
            << layers.to_string() << '\n';

  const auto fp = quant::memory_footprint(*net, input, precision);
  std::cout << "total: " << sched.total_cycles << " cycles, "
            << format_fixed(sched.runtime_us(acc), 1) << " us/image, "
            << format_fixed(sched.energy_uj(acc), 2) << " uJ/image, "
            << format_fixed(fp.param_kb(), 0) << " KB parameters\n";
  return 0;
}
